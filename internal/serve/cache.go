package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"ace/internal/store"
)

// cached is one deterministic extraction outcome: the rendered
// wirelist, the rendered diagnostics report (nil when the run was
// silent) and whether the run was clean (ok) or carried
// Error-severity diagnostics (a 422 with salvage). Non-deterministic
// outcomes — timeouts, admission sheds, panics — are never cached.
type cached struct {
	ok       bool
	wirelist []byte
	diagJSON []byte
}

// flight is one in-progress computation of a cache key. The first
// requester becomes the owner and computes; concurrent requesters for
// the same key wait on done and share the outcome, so a burst of
// identical uploads costs one extraction (the leafcache single-flight
// pattern, lifted to whole files).
type flight struct {
	done chan struct{}
	res  *cached
	err  error
}

// resultCache is the whole-file content-addressed result cache: an
// in-memory single-flight layer over an optional persistent
// internal/store directory. Keys are SHA-256 over the upload bytes
// plus every option that can change the output, so identical uploads
// never re-extract — across concurrent requests (single-flight),
// across requests (disk), and across daemon restarts (disk).
type resultCache struct {
	mu       sync.Mutex
	inflight map[string]*flight
	disk     *store.Store // nil: memory single-flight only
}

func newResultCache(disk *store.Store) *resultCache {
	return &resultCache{inflight: map[string]*flight{}, disk: disk}
}

// resultKey derives the cache key for an upload. The output of an
// extraction is byte-identical at every Workers × FlattenWorkers
// setting (the repository's core equivalence guarantee), so worker
// counts stay out of the key; the budgets, leniency and the output
// part name do change the bytes and are folded in.
func resultKey(name string, lenient bool, l limitsFingerprint, body []byte) string {
	h := sha256.New()
	h.Write([]byte("ace-serve-result-v1\x00"))
	if lenient {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	h.Write([]byte(name))
	h.Write([]byte{0})
	var lf [8 * 4]byte
	binary.LittleEndian.PutUint64(lf[0:], uint64(l.maxBoxes))
	binary.LittleEndian.PutUint64(lf[8:], uint64(l.maxExpanded))
	binary.LittleEndian.PutUint64(lf[16:], uint64(l.maxDepth))
	binary.LittleEndian.PutUint64(lf[24:], uint64(l.maxMemBytes))
	h.Write(lf[:])
	h.Write(body)
	return "r1:" + hex.EncodeToString(h.Sum(nil))
}

// limitsFingerprint is the subset of guard.Limits that affects an
// extraction's output and therefore the cache key.
type limitsFingerprint struct {
	maxBoxes, maxExpanded, maxDepth, maxMemBytes int64
}

// lookup returns the flight for key and whether the caller owns it.
// Owners must call finish exactly once; non-owners wait on done.
func (c *resultCache) lookup(key string) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fl, ok := c.inflight[key]; ok {
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	return fl, true
}

// finish publishes the owner's outcome to every waiter and retires the
// flight; later requests for the key start fresh (and will hit disk
// when the outcome was cacheable).
func (c *resultCache) finish(key string, fl *flight, res *cached, err error) {
	fl.res, fl.err = res, err
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(fl.done)
}

// Disk payload layout (inside a verified store entry):
//
//	u8  version (cachedVersion)
//	u8  ok flag
//	u32 wirelist length, wirelist bytes
//	u32 diagnostics length, diagnostics JSON bytes
const cachedVersion = 1

func encodeCached(c *cached) []byte {
	out := make([]byte, 0, 2+8+len(c.wirelist)+len(c.diagJSON))
	okByte := byte(0)
	if c.ok {
		okByte = 1
	}
	out = append(out, cachedVersion, okByte)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(c.wirelist)))
	out = append(out, n[:]...)
	out = append(out, c.wirelist...)
	binary.LittleEndian.PutUint32(n[:], uint32(len(c.diagJSON)))
	out = append(out, n[:]...)
	out = append(out, c.diagJSON...)
	return out
}

func decodeCached(raw []byte) (*cached, bool) {
	if len(raw) < 2+4 || raw[0] != cachedVersion {
		return nil, false
	}
	c := &cached{ok: raw[1] == 1}
	rest := raw[2:]
	wlLen := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if wlLen < 0 || wlLen+4 > len(rest) {
		return nil, false
	}
	c.wirelist = append([]byte(nil), rest[:wlLen]...)
	rest = rest[wlLen:]
	diagLen := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if diagLen != len(rest) {
		return nil, false
	}
	if diagLen > 0 {
		c.diagJSON = append([]byte(nil), rest...)
	}
	return c, true
}

// getDisk reads a cached outcome from the persistent tier. A payload
// that verifies at the store layer but fails to decode (a schema
// change) is quarantined so it is never consulted again.
func (c *resultCache) getDisk(key string) (*cached, bool) {
	if c.disk == nil {
		return nil, false
	}
	raw, ok := c.disk.Get(key)
	if !ok {
		return nil, false
	}
	res, ok := decodeCached(raw)
	if !ok {
		c.disk.Quarantine(key)
		return nil, false
	}
	return res, true
}

// putDisk persists a deterministic outcome; errors are deliberately
// dropped — a failed write only costs a future recompute.
func (c *resultCache) putDisk(key string, res *cached) {
	if c.disk == nil {
		return
	}
	_ = c.disk.Put(key, encodeCached(res))
}

// diskStats reports the persistent tier's size (0, 0 without one).
func (c *resultCache) diskStats() (entries int, bytes int64) {
	if c.disk == nil {
		return 0, 0
	}
	return c.disk.Stats()
}

// diskIO reports the persistent tier's I/O error counters (zero
// without one).
func (c *resultCache) diskIO() store.IOCounters {
	if c.disk == nil {
		return store.IOCounters{}
	}
	return c.disk.IOCounters()
}
