package serve

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"ace/internal/guard"
	"ace/internal/vfs"
)

// unopenableDir returns a path whose parent is a regular file, so
// MkdirAll fails with ENOTDIR regardless of privileges (chmod-based
// read-only setups are unreliable when the tests run as root).
func unopenableDir(t *testing.T) string {
	t.Helper()
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(blocker, "cache")
}

// TestDegradedBootServesCorrectBytes: a cache dir that cannot be
// opened must not stop the daemon — it boots degraded, serves 200s
// with the reference bytes, and reports the condition in /statz.
func TestDegradedBootServesCorrectBytes(t *testing.T) {
	src := cherryCIF(t)
	s := newTestServer(t, Options{CacheDir: unopenableDir(t)})
	if s.CacheWarning() == "" {
		t.Fatal("degraded boot reported no cache warning")
	}

	want := wantWirelist(t, src, "cherry", false, guard.Limits{})
	for i := 0; i < 2; i++ {
		w := postRaw(t, s, "/extract?name=cherry", src, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status = %d, body %.300s", i, w.Code, w.Body.String())
		}
		if !bytes.Equal(w.Body.Bytes(), want) {
			t.Fatalf("request %d: wirelist differs from reference", i)
		}
	}
	st := getStats(t, s)
	if !st.CacheDegraded || st.CacheError == "" {
		t.Errorf("statz hides the degradation: degraded=%v error=%q", st.CacheDegraded, st.CacheError)
	}
	if st.Extractions != 2 {
		t.Errorf("extractions = %d, want 2 (no cache to hit)", st.Extractions)
	}
}

// TestCacheDirDeletedUnderLiveServer: removing the cache directory out
// from under a running server degrades reads to misses and writes to
// counted errors — every response stays 200 with identical bytes.
func TestCacheDirDeletedUnderLiveServer(t *testing.T) {
	src := cherryCIF(t)
	dir := filepath.Join(t.TempDir(), "cache")
	s := newTestServer(t, Options{CacheDir: dir})
	want := wantWirelist(t, src, "cherry", false, guard.Limits{})

	w := postRaw(t, s, "/extract?name=cherry", src, nil)
	if w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatalf("pre-delete request failed: %d", w.Code)
	}

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		w := postRaw(t, s, "/extract?name=cherry", src, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("post-delete request %d: status = %d, body %.300s", i, w.Code, w.Body.String())
		}
		if !bytes.Equal(w.Body.Bytes(), want) {
			t.Fatalf("post-delete request %d: wirelist differs", i)
		}
	}
	st := getStats(t, s)
	if st.CachePutErrors == 0 {
		t.Errorf("vanished cache dir produced no put errors: %+v", st)
	}
}

// TestPowerCutCacheKeepsServing: freezing every write on the cache
// filesystem mid-flight must not change a single response byte — old
// entries still read, new results recompute and fail to persist, and
// the failures are counted.
func TestPowerCutCacheKeepsServing(t *testing.T) {
	src := cherryCIF(t)
	ffs := vfs.NewFault(vfs.OS)
	s := newTestServer(t, Options{CacheDir: t.TempDir(), CacheFS: ffs})
	wantCherry := wantWirelist(t, src, "cherry", false, guard.Limits{})
	wantOther := wantWirelist(t, src, "other", false, guard.Limits{})

	w := postRaw(t, s, "/extract?name=cherry", src, nil)
	if w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), wantCherry) {
		t.Fatalf("pre-cut request failed: %d", w.Code)
	}

	ffs.PowerCut()

	// The entry published before the cut still serves.
	w = postRaw(t, s, "/extract?name=cherry", src, nil)
	if w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), wantCherry) {
		t.Fatalf("post-cut cached request failed: %d", w.Code)
	}
	if h := w.Header().Get("X-Cache"); h != "hit" {
		t.Errorf("post-cut X-Cache = %q, want hit", h)
	}

	// A new key recomputes; the frozen persist is a counted error, not
	// a failed request.
	w = postRaw(t, s, "/extract?name=other", src, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("post-cut new request: status = %d, body %.300s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), wantOther) {
		t.Fatal("post-cut new request: wirelist differs")
	}
	st := getStats(t, s)
	if st.CachePutErrors == 0 {
		t.Errorf("frozen writes produced no put errors: %+v", st)
	}
	if st.CacheDegraded {
		t.Errorf("runtime faults must not mark the boot degraded: %+v", st)
	}
}

// TestDegradedReadsFailOpen: every disk read erroring (not just
// missing) must degrade to recompute with counted errors and
// byte-identical responses.
func TestDegradedReadsFailOpen(t *testing.T) {
	src := cherryCIF(t)
	ffs := vfs.NewFault(vfs.OS)
	s := newTestServer(t, Options{CacheDir: t.TempDir(), CacheFS: ffs})
	want := wantWirelist(t, src, "cherry", false, guard.Limits{})

	w := postRaw(t, s, "/extract?name=cherry", src, nil)
	if w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatalf("populate request failed: %d", w.Code)
	}

	ffs.FailOps(vfs.OpReadFile, vfs.OpOpen)
	ffs.FailFrom(1, vfs.ErrInjected)
	w = postRaw(t, s, "/extract?name=cherry", src, nil)
	ffs.Restore()
	if w.Code != http.StatusOK {
		t.Fatalf("request under read faults: status = %d, body %.300s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatal("request under read faults: wirelist differs")
	}
	st := getStats(t, s)
	if st.CacheGetErrors == 0 {
		t.Errorf("read faults produced no get errors: %+v", st)
	}
}
