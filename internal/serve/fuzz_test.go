package serve

import (
	"bytes"
	"encoding/json"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ace/internal/guard"
)

// fuzzServer is shared across fuzz iterations: building a Server per
// input would spend the fuzz budget on setup instead of the handler.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func fuzzServer(t testing.TB) *Server {
	fuzzOnce.Do(func() {
		s, err := New(Options{
			MaxBodyBytes:   1 << 20,
			RequestTimeout: 5 * time.Second,
			Limits:         guard.Limits{MaxBoxes: 100_000, MaxExpandedBoxes: 100_000, MaxDepth: 64},
		})
		if err != nil {
			t.Fatal(err)
		}
		fuzzSrv = s
	})
	return fuzzSrv
}

// knownStatuses is the complete set of statuses the service may emit.
// Anything else is an unclassified response — the invariant the fuzzer
// hunts for.
var knownStatuses = map[int]bool{
	http.StatusOK:                    true,
	http.StatusBadRequest:            true,
	http.StatusNotFound:              true,
	http.StatusMethodNotAllowed:      true,
	http.StatusRequestEntityTooLarge: true,
	http.StatusUnprocessableEntity:   true,
	http.StatusTooManyRequests:       true,
	http.StatusInternalServerError:   true,
	http.StatusServiceUnavailable:    true,
	http.StatusGatewayTimeout:        true,
}

// checkClassified asserts the service's core robustness contract on
// one response: a known status, and problem JSON on every error.
func checkClassified(t *testing.T, w *httptest.ResponseRecorder) {
	t.Helper()
	if !knownStatuses[w.Code] {
		t.Fatalf("unclassified status %d (body %.200s)", w.Code, w.Body.String())
	}
	if w.Code < 400 {
		return
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/problem+json" {
		t.Fatalf("error %d without problem media type %q (body %.200s)", w.Code, ct, w.Body.String())
	}
	var p Problem
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatalf("error %d body is not problem JSON: %v (%.200s)", w.Code, err, w.Body.String())
	}
	if p.Status != w.Code || p.Code == "" {
		t.Fatalf("problem document inconsistent: status=%d http=%d code=%q", p.Status, w.Code, p.Code)
	}
}

// FuzzExtractUpload throws arbitrary bytes at the upload handler, both
// as a raw body and wrapped in a multipart form (filename fuzzed too),
// asserting that no input can crash the daemon or escape the response
// taxonomy.
func FuzzExtractUpload(f *testing.F) {
	f.Add([]byte("L ND; B 100 100 0 0;\nE\n"), "a.cif", false)
	f.Add([]byte("DS 1; L ND; B 4 4 0 0; DF;\nC 1;\nE\n"), "hier.cif", true)
	f.Add([]byte("garbage ;;; \x00\xff"), "", true)
	f.Add([]byte(""), "empty", false)
	f.Add([]byte("DS 1; C 1; DF; C 1; E\n"), "recursive", false) // self-recursive call
	f.Add([]byte("(unterminated comment L ND; B 1 1 0 0; E"), "cmt", true)
	f.Add(bytes.Repeat([]byte("L ND; B 9 9 0 0;\n"), 100), "many", false)

	f.Fuzz(func(t *testing.T, body []byte, name string, asMultipart bool) {
		s := fuzzServer(t)
		var req *http.Request
		if asMultipart {
			var buf bytes.Buffer
			mw := multipart.NewWriter(&buf)
			fw, err := mw.CreateFormFile("file", name)
			if err != nil {
				// Some fuzzed names are invalid for multipart; the
				// client library rejecting them is out of scope.
				t.Skip()
			}
			fw.Write(body)
			mw.Close()
			req = httptest.NewRequest(http.MethodPost, "/extract?lenient=1", &buf)
			req.Header.Set("Content-Type", mw.FormDataContentType())
		} else {
			req = httptest.NewRequest(http.MethodPost, "/extract", bytes.NewReader(body))
		}
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		checkClassified(t, w)
	})
}

// FuzzBatchUpload drives the batch endpoint with two fuzzed parts.
func FuzzBatchUpload(f *testing.F) {
	f.Add([]byte("L ND; B 100 100 0 0;\nE\n"), []byte("junk"))
	f.Add([]byte(""), []byte("DS 1;DF;E\n"))

	f.Fuzz(func(t *testing.T, a, b []byte) {
		s := fuzzServer(t)
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		for i, body := range [][]byte{a, b} {
			fw, err := mw.CreateFormFile("file", []string{"a.cif", "b.cif"}[i])
			if err != nil {
				t.Skip()
			}
			fw.Write(body)
		}
		mw.Close()
		req := httptest.NewRequest(http.MethodPost, "/batch", &buf)
		req.Header.Set("Content-Type", mw.FormDataContentType())
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		checkClassified(t, w)
		if w.Code == http.StatusOK {
			var doc struct {
				Results []struct {
					Status int `json:"status"`
				} `json:"results"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
				t.Fatalf("batch 200 body is not JSON: %v", err)
			}
			for _, r := range doc.Results {
				if !knownStatuses[r.Status] {
					t.Fatalf("batch entry has unclassified status %d", r.Status)
				}
			}
		}
	})
}
