package serve

import (
	"sync"
	"sync/atomic"
)

// metrics is the server's counter set. Everything is monotonic and
// atomically updated; the /statz handler snapshots it as JSON.
type metrics struct {
	accepted      atomic.Int64 // requests that passed admission
	extractions   atomic.Int64 // actual pipeline runs (cache misses)
	cacheHits     atomic.Int64 // served from the persistent tier
	dedupWaits    atomic.Int64 // served by a concurrent identical request
	panics        atomic.Int64 // requests answered 500 after a recovered panic
	shedQueueFull atomic.Int64 // 429: wait queue at capacity
	shedQueueWait atomic.Int64 // 429: no token within the queue-wait budget
	shedTenant    atomic.Int64 // 429: per-tenant concurrency cap
	shedDrain     atomic.Int64 // 503: shed during drain

	mu       sync.Mutex
	byStatus map[int]int64
}

func newMetrics() *metrics {
	return &metrics{byStatus: map[int]int64{}}
}

func (m *metrics) countStatus(code int) {
	m.mu.Lock()
	m.byStatus[code]++
	m.mu.Unlock()
}

func (m *metrics) statusSnapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.byStatus))
	for code, n := range m.byStatus {
		out[itoa3(code)] = n
	}
	return out
}

// itoa3 formats a three-digit HTTP status without strconv in the lock.
func itoa3(code int) string {
	if code < 100 || code > 999 {
		code = 999
	}
	return string([]byte{byte('0' + code/100), byte('0' + code/10%10), byte('0' + code%10)})
}

// Stats is the /statz document: load, shed and cache counters plus
// process gauges, so a load harness can assert the daemon stayed
// bounded without attaching a debugger.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`

	Accepted      int64            `json:"accepted"`
	Extractions   int64            `json:"extractions"`
	CacheHits     int64            `json:"cache_hits"`
	DedupWaits    int64            `json:"dedup_waits"`
	Panics        int64            `json:"panics"`
	ShedQueueFull int64            `json:"shed_queue_full"`
	ShedQueueWait int64            `json:"shed_queue_wait"`
	ShedTenant    int64            `json:"shed_tenant"`
	ShedDrain     int64            `json:"shed_drain"`
	ByStatus      map[string]int64 `json:"by_status"`

	CacheEntries int   `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`

	// CacheDegraded is true when a configured persistent cache could
	// not be opened (the daemon serves memory-only); CacheError carries
	// the reason. CacheGetErrors/CachePutErrors count disk operations
	// that failed for I/O reasons after boot — each one degraded to a
	// recompute or an unpersisted result, never a wrong byte.
	CacheDegraded  bool   `json:"cache_degraded,omitempty"`
	CacheError     string `json:"cache_error,omitempty"`
	CacheGetErrors int64  `json:"cache_get_errors,omitempty"`
	CachePutErrors int64  `json:"cache_put_errors,omitempty"`

	Goroutines   int   `json:"goroutines"`
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}
