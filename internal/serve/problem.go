package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"ace/internal/cif"
	"ace/internal/cli"
	"ace/internal/guard"
)

// Problem is the RFC 7807 problem document every non-2xx response
// carries, extended with the repository's failure taxonomy: code is a
// stable machine-readable slug, exit_code the internal/cli exit the
// same failure produces on the command line, stage the pipeline stage
// that attributed the error. 422 responses embed the full -diag-json
// diagnostics report; lenient extractions additionally carry the
// salvaged wirelist, so a fail-soft client loses nothing over the CLI.
type Problem struct {
	Type        string          `json:"type"`
	Title       string          `json:"title"`
	Status      int             `json:"status"`
	Detail      string          `json:"detail,omitempty"`
	Code        string          `json:"code"`
	ExitCode    int             `json:"exit_code"`
	Stage       string          `json:"stage,omitempty"`
	RetryAfter  int             `json:"retry_after,omitempty"` // seconds; also the Retry-After header
	Diagnostics json.RawMessage `json:"diagnostics,omitempty"`
	Wirelist    string          `json:"wirelist,omitempty"`
}

// problemType is the URN prefix of Problem.Type: stable, resolvable
// nowhere, and unique per code as RFC 7807 asks.
const problemType = "urn:ace:problem:"

func newProblem(status int, code, title string) Problem {
	return Problem{
		Type:   problemType + code,
		Title:  title,
		Status: status,
		Code:   code,
	}
}

// problemFor classifies a pipeline error into a problem document,
// reusing the internal/cli exit taxonomy so HTTP and CLI classify one
// failure identically: diagnostics/parse damage → 422, timeout → 504,
// resource budgets → 413 (or 429 when the exhausted budget is
// concurrency), corrupt stored artifacts → 422, panics → 500.
func problemFor(err error) Problem {
	exit := cli.ExitCodeFor(err)

	var pe *guard.PanicError
	if errors.As(err, &pe) {
		p := newProblem(http.StatusInternalServerError, "panic", "extraction worker panicked")
		p.Detail = pe.Error()
		p.Stage = pe.Stage
		p.ExitCode = exit
		return p
	}

	var p Problem
	switch exit {
	case cli.ExitTimeout:
		p = newProblem(http.StatusGatewayTimeout, "timeout", "extraction deadline exceeded")
		p.RetryAfter = 1
	case cli.ExitLimit:
		var le *guard.LimitError
		if errors.As(err, &le) && le.What == guard.WhatConcurrent {
			p = newProblem(http.StatusTooManyRequests, "overloaded", "concurrency budget exhausted")
			p.RetryAfter = 1
		} else {
			p = newProblem(http.StatusRequestEntityTooLarge, "limit", "resource budget exceeded")
		}
		if le != nil {
			p.Stage = le.Stage
		}
	case cli.ExitCorrupt:
		p = newProblem(http.StatusUnprocessableEntity, "corrupt", "stored artifact failed verification")
	default:
		var ce *cif.Error
		var se *cif.StructError
		if errors.As(err, &ce) || errors.As(err, &se) || errors.Is(err, guard.ErrNoGeometry) {
			p = newProblem(http.StatusUnprocessableEntity, "invalid-input", "CIF input rejected")
		} else {
			p = newProblem(http.StatusInternalServerError, "internal", "extraction failed")
		}
	}
	var se *guard.StageError
	if p.Stage == "" && errors.As(err, &se) {
		p.Stage = se.Stage
	}
	p.Detail = err.Error()
	p.ExitCode = exit
	return p
}

// writeProblem renders a problem document with the
// application/problem+json media type and mirrors RetryAfter into the
// Retry-After header, counting the response in the status metrics.
func (s *Server) writeProblem(w http.ResponseWriter, p Problem) {
	body, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		// A problem document is plain data; this cannot fail. Keep the
		// response classified even if it somehow does.
		body = []byte(`{"type":"` + problemType + `internal","title":"problem encoding failed","status":500,"code":"internal","exit_code":1}`)
		p.Status = http.StatusInternalServerError
	}
	h := w.Header()
	h.Set("Content-Type", "application/problem+json")
	h.Set("X-Content-Type-Options", "nosniff")
	if p.RetryAfter > 0 {
		h.Set("Retry-After", strconv.Itoa(p.RetryAfter))
	}
	w.WriteHeader(p.Status)
	_, _ = w.Write(body)
	_, _ = w.Write([]byte("\n"))
	s.met.countStatus(p.Status)
}
