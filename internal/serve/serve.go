// Package serve is the extraction-as-a-service shell around the
// reusable extract.Engine: a stdlib net/http server that accepts CIF
// uploads (single and batch) and answers with wirelists or
// diagnostics reports, engineered robustness-first.
//
// The layers, outermost first:
//
//   - Admission: a bounded wait queue in front of a guard.Gate caps
//     in-flight extractions; overflow is shed immediately with
//     429 + Retry-After problem JSON, so hostile load melts into fast
//     rejections instead of queue growth. Per-tenant gates (bucketed,
//     so adversarial tenant names cannot grow memory) stop one tenant
//     from holding every slot.
//   - Isolation: every request runs under its own context deadline
//     and its own guard.Limits budgets, and every extraction is
//     wrapped in guard.Recover — a hierarchy bomb fails its budget in
//     milliseconds with 413, a worker panic becomes a 500 problem
//     document, and the process never dies with a request.
//   - Classification: every non-2xx response is an RFC 7807 problem
//     document carrying the internal/cli exit taxonomy, so HTTP and
//     CLI clients classify one failure identically.
//   - Caching: a whole-file content-addressed result cache
//     (single-flight in memory, internal/store on disk) means
//     identical uploads never re-extract — concurrently, serially, or
//     across daemon restarts.
//   - Drain: BeginDrain sheds the queue and refuses new work with
//     503 while in-flight requests finish; Drain bounds how long they
//     may take.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"runtime"
	"strings"
	"time"

	"ace/internal/diag"
	"ace/internal/extract"
	"ace/internal/guard"
	"ace/internal/prof"
	"ace/internal/store"
	"ace/internal/vfs"
	"ace/internal/wirelist"
)

// StageRequest is the stage attributed to faults caught at the
// request boundary (panics escaping the pipeline's own recover
// wrappers, injected request-level faults).
const StageRequest = "serve/request"

// Defaults applied by New for zero Options fields.
const (
	DefaultQueueWait      = 2 * time.Second
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxBodyBytes   = 32 << 20
	defaultQueueFactor    = 4 // QueueDepth = factor × MaxInFlight

	// tenantBuckets is the fixed number of per-tenant admission gates.
	// Tenants hash onto buckets, so a flood of fabricated tenant names
	// costs an attacker nothing: memory stays constant and colliding
	// tenants merely share a cap.
	tenantBuckets = 256

	// maxBatchParts caps the files in one batch upload.
	maxBatchParts = 64

	// maxNameLen caps the caller-supplied part name.
	maxNameLen = 256
)

// Options configures a Server.
type Options struct {
	// MaxInFlight caps concurrent extractions; zero selects
	// GOMAXPROCS. This is the primary memory bound: peak extraction
	// footprint ≈ MaxInFlight × per-request Limits.
	MaxInFlight int

	// QueueDepth caps requests waiting for an in-flight slot; beyond
	// it admission sheds with 429. Zero selects 4 × MaxInFlight.
	QueueDepth int

	// QueueWait caps how long one request may wait for admission
	// before shedding with 429; zero selects DefaultQueueWait.
	QueueWait time.Duration

	// RequestTimeout is the per-request wall-clock deadline, spanning
	// queue wait and extraction; zero selects DefaultRequestTimeout,
	// negative disables it.
	RequestTimeout time.Duration

	// MaxBodyBytes caps an upload (single or whole batch); beyond it
	// the request fails with 413. Zero selects DefaultMaxBodyBytes.
	MaxBodyBytes int64

	// Limits are the per-request extraction budgets (boxes, expanded
	// boxes, depth, memory). MaxConcurrent is ignored here — the
	// admission layer owns concurrency via MaxInFlight.
	Limits guard.Limits

	// TenantHeader names the header identifying a tenant for
	// per-tenant admission; empty selects "X-Ace-Tenant". Requests
	// without the header share the anonymous tenant.
	TenantHeader string

	// TenantInFlight caps one tenant's concurrent admitted requests
	// (0: per-tenant gating disabled).
	TenantInFlight int

	// Workers and FlattenWorkers configure the extraction pipeline
	// exactly as the ace CLI flags do. The wirelist is byte-identical
	// at every setting, so they tune latency, never output.
	Workers        int
	FlattenWorkers int

	// CacheDir enables the persistent result cache in this directory
	// (shared across processes and restarts); CacheMaxBytes caps it
	// with LRU eviction (0: store default). A directory that cannot be
	// opened degrades the server to memory-only caching — recorded in
	// CacheWarning and /statz — rather than failing the boot: the disk
	// is an accelerator, never a dependency.
	CacheDir      string
	CacheMaxBytes int64

	// CacheFS is the filesystem the persistent cache runs on; nil
	// selects vfs.OS. Fault-injection tests substitute a vfs.FaultFS.
	CacheFS vfs.FS
}

// Server is one extraction service instance. Create with New, expose
// via Handler or ServeHTTP, stop with BeginDrain/Drain.
type Server struct {
	opt       Options
	eng       *extract.Engine
	adm       *admission
	tenants   []*guard.Gate // nil: per-tenant gating disabled
	cache     *resultCache
	cacheWarn string // non-empty: persistent cache requested but degraded
	met       *metrics
	start     time.Time
}

// New builds a Server, applying defaults and opening the persistent
// cache when configured.
func New(opt Options) (*Server, error) {
	if opt.MaxInFlight <= 0 {
		opt.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = defaultQueueFactor * opt.MaxInFlight
	}
	if opt.QueueWait <= 0 {
		opt.QueueWait = DefaultQueueWait
	}
	if opt.RequestTimeout == 0 {
		opt.RequestTimeout = DefaultRequestTimeout
	}
	if opt.MaxBodyBytes <= 0 {
		opt.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opt.TenantHeader == "" {
		opt.TenantHeader = "X-Ace-Tenant"
	}
	var disk *store.Store
	var cacheWarn string
	if opt.CacheDir != "" {
		s, err := store.Open(opt.CacheDir, store.Options{MaxBytes: opt.CacheMaxBytes, FS: opt.CacheFS})
		if err != nil {
			// Degraded boot, not a failed one: the daemon must come up
			// and serve correct bytes with no disk at all. The condition
			// is observable via CacheWarning and /statz.
			cacheWarn = fmt.Sprintf("persistent cache degraded, serving memory-only: %v", err)
		} else {
			disk = s
		}
	}
	srv := &Server{
		opt:       opt,
		eng:       extract.NewEngine(),
		adm:       newAdmission(opt.MaxInFlight, opt.QueueDepth, opt.QueueWait),
		cache:     newResultCache(disk),
		cacheWarn: cacheWarn,
		met:       newMetrics(),
		start:     time.Now(),
	}
	if opt.TenantInFlight > 0 {
		srv.tenants = make([]*guard.Gate, tenantBuckets)
		for i := range srv.tenants {
			srv.tenants[i] = guard.NewGate(opt.TenantInFlight)
		}
	}
	return srv, nil
}

// Handler returns the server as an http.Handler.
func (s *Server) Handler() http.Handler { return s }

// CacheWarning reports why the persistent cache is degraded (empty
// when it is healthy or was never configured).
func (s *Server) CacheWarning() string { return s.cacheWarn }

// ServeHTTP dispatches by hand rather than through http.ServeMux so
// that unknown paths and wrong methods are also answered with problem
// documents — the service's contract is that every error response,
// without exception, is classified problem JSON.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/extract":
		s.requirePost(w, r, s.handleExtract)
	case "/batch":
		s.requirePost(w, r, s.handleBatch)
	case "/healthz":
		s.handleHealthz(w, r)
	case "/statz":
		s.handleStatz(w, r)
	default:
		p := newProblem(http.StatusNotFound, "not-found", "unknown endpoint")
		p.Detail = r.URL.Path + " is not served; see /extract, /batch, /healthz, /statz"
		p.ExitCode = 2
		s.writeProblem(w, p)
	}
}

func (s *Server) requirePost(w http.ResponseWriter, r *http.Request, h func(http.ResponseWriter, *http.Request)) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		p := newProblem(http.StatusMethodNotAllowed, "method-not-allowed", "POST required")
		p.ExitCode = 2
		s.writeProblem(w, p)
		return
	}
	h(w, r)
}

// BeginDrain moves the server into draining: new and queued requests
// are shed with 503 problem documents while in-flight extractions run
// on. Idempotent.
func (s *Server) BeginDrain() { s.adm.beginDrain() }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.adm.draining() }

// Drain begins draining and waits — bounded by ctx — for in-flight
// work to finish. A ctx error means work was still running at the
// deadline; the caller decides whether to hard-stop.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	return s.adm.waitIdle(ctx)
}

// InFlight reports currently admitted extractions (for harnesses).
func (s *Server) InFlight() int { return s.adm.gate.InFlight() }

// params are the per-request extraction knobs parsed from the query.
type params struct {
	lenient  bool
	diagJSON bool
	name     string
}

func parseParams(r *http.Request) (params, error) {
	q := r.URL.Query()
	var p params
	switch q.Get("lenient") {
	case "", "0", "false":
	case "1", "true":
		p.lenient = true
	default:
		return p, fmt.Errorf("lenient must be 0/1/true/false, got %q", q.Get("lenient"))
	}
	switch q.Get("diag") {
	case "":
	case "json":
		p.diagJSON = true
	default:
		return p, fmt.Errorf("diag must be json, got %q", q.Get("diag"))
	}
	p.name = q.Get("name")
	if len(p.name) > maxNameLen {
		return p, fmt.Errorf("name longer than %d bytes", maxNameLen)
	}
	return p, nil
}

// tenantGate maps the request's tenant header to its admission gate
// (nil when per-tenant gating is off).
func (s *Server) tenantGate(r *http.Request) *guard.Gate {
	if s.tenants == nil {
		return nil
	}
	tenant := r.Header.Get(s.opt.TenantHeader)
	h := uint64(14695981039346656037)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= 1099511628211
	}
	return s.tenants[h%tenantBuckets]
}

// shedProblem classifies an admission failure.
func (s *Server) shedProblem(err error) Problem {
	retry := int(s.opt.QueueWait / time.Second)
	if retry < 1 {
		retry = 1
	}
	switch {
	case errors.Is(err, errDraining):
		s.met.shedDrain.Add(1)
		p := newProblem(http.StatusServiceUnavailable, "draining", "server is draining")
		p.RetryAfter = retry
		p.ExitCode = 4
		return p
	case errors.Is(err, errQueueFull):
		s.met.shedQueueFull.Add(1)
		p := newProblem(http.StatusTooManyRequests, "queue-full", "admission queue at capacity")
		p.RetryAfter = retry
		p.ExitCode = 4
		return p
	case errors.Is(err, errQueueWait):
		s.met.shedQueueWait.Add(1)
		p := newProblem(http.StatusTooManyRequests, "queue-timeout", "no extraction slot freed in time")
		p.RetryAfter = retry
		p.ExitCode = 4
		return p
	default:
		// The request's own deadline expired while queued.
		return problemFor(err)
	}
}

// errTooLarge marks an upload that exceeded MaxBodyBytes.
type errTooLarge struct{ limit int64 }

func (e *errTooLarge) Error() string {
	return fmt.Sprintf("upload exceeds the %d-byte body limit", e.limit)
}

// readBody drains the (already MaxBytesReader-wrapped) reader,
// classifying the cap as errTooLarge.
func (s *Server) readBody(r io.Reader) ([]byte, error) {
	body, err := io.ReadAll(r)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, &errTooLarge{limit: s.opt.MaxBodyBytes}
		}
		return nil, err
	}
	return body, nil
}

// isMultipart reports whether the request carries a multipart body,
// alongside the parsed boundary check multipart.Reader needs.
func isMultipart(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && strings.HasPrefix(mt, "multipart/")
}

// readUpload reads a single-design upload: the raw body, or the first
// file part of a multipart form (whose file name doubles as the
// default part name).
func (s *Server) readUpload(r *http.Request) (body []byte, name string, err error) {
	if !isMultipart(r) {
		body, err = s.readBody(r.Body)
		return body, "", err
	}
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, "", err
	}
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			return nil, "", errors.New("multipart form holds no file part")
		}
		if err != nil {
			return nil, "", err
		}
		if part.FormName() != "file" && part.FileName() == "" {
			continue
		}
		body, err = s.readBody(part)
		if err != nil {
			return nil, "", err
		}
		return body, part.FileName(), nil
	}
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	p, perr := parseParams(r)
	if perr != nil {
		pr := newProblem(http.StatusBadRequest, "bad-request", "invalid query parameter")
		pr.Detail = perr.Error()
		pr.ExitCode = 2
		s.writeProblem(w, pr)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	release, shed := s.admitAll(ctx, r)
	if shed != nil {
		s.writeProblem(w, *shed)
		return
	}
	defer release()
	s.met.accepted.Add(1)

	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	body, upName, err := s.readUpload(r)
	if err != nil {
		s.writeProblem(w, uploadProblem(err))
		return
	}
	if p.name == "" {
		p.name = upName
	}
	if p.name == "" {
		p.name = "upload"
	}
	out := s.run(ctx, body, p)
	s.writeOutcome(w, out, p)
}

// requestCtx derives the per-request deadline context.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opt.RequestTimeout < 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), s.opt.RequestTimeout)
}

// admitAll runs the full admission stack — tenant gate, then global
// queue+gate — returning either a combined release or the problem to
// answer with.
func (s *Server) admitAll(ctx context.Context, r *http.Request) (release func(), shed *Problem) {
	if s.Draining() {
		p := s.shedProblem(errDraining)
		return nil, &p
	}
	tg := s.tenantGate(r)
	if tg != nil {
		if err := tg.TryAcquire(guard.StageAdmit); err != nil {
			s.met.shedTenant.Add(1)
			p := problemFor(err) // LimitError/WhatConcurrent → 429
			p.Code = "tenant-overloaded"
			p.Type = problemType + p.Code
			p.Title = "tenant concurrency cap reached"
			return nil, &p
		}
	}
	rel, err := s.adm.admit(ctx)
	if err != nil {
		if tg != nil {
			tg.Release()
		}
		p := s.shedProblem(err)
		return nil, &p
	}
	return func() {
		rel()
		if tg != nil {
			tg.Release()
		}
	}, nil
}

func uploadProblem(err error) Problem {
	var tl *errTooLarge
	if errors.As(err, &tl) {
		p := newProblem(http.StatusRequestEntityTooLarge, "body-too-large", "upload exceeds the body limit")
		p.Detail = err.Error()
		p.ExitCode = 4
		return p
	}
	p := newProblem(http.StatusBadRequest, "bad-body", "could not read upload")
	p.Detail = err.Error()
	p.ExitCode = 2
	return p
}

// outcome is what a request resolves to: a deterministic cached
// result, or a classified error.
type outcome struct {
	res       *cached
	err       error
	fromCache bool
}

// run resolves an upload through the cache stack: single-flight
// in-memory, then disk, then one real extraction whose deterministic
// outcome is published to both.
func (s *Server) run(ctx context.Context, body []byte, p params) outcome {
	key := resultKey(p.name, p.lenient, s.limitsFingerprint(), body)
	fl, owner := s.cache.lookup(key)
	if !owner {
		s.met.dedupWaits.Add(1)
		select {
		case <-fl.done:
			return outcome{res: fl.res, err: fl.err, fromCache: true}
		case <-ctx.Done():
			return outcome{err: &guard.StageError{Stage: StageRequest, Err: ctx.Err()}}
		}
	}
	if res, ok := s.cache.getDisk(key); ok {
		s.met.cacheHits.Add(1)
		s.cache.finish(key, fl, res, nil)
		return outcome{res: res, fromCache: true}
	}
	s.met.extractions.Add(1)
	res, err := s.extractOnce(ctx, body, p)
	s.cache.finish(key, fl, res, err)
	if err == nil {
		// Clean and diagnostics-bearing runs are both deterministic
		// functions of (bytes, options); timeouts and panics are not
		// and stay out of the persistent tier.
		s.cache.putDisk(key, res)
	}
	return outcome{res: res, err: err}
}

func (s *Server) limitsFingerprint() limitsFingerprint {
	l := s.opt.Limits
	return limitsFingerprint{
		maxBoxes:    l.MaxBoxes,
		maxExpanded: l.MaxExpandedBoxes,
		maxDepth:    int64(l.MaxDepth),
		maxMemBytes: l.MaxMemBytes,
	}
}

// extractOnce runs one real extraction under the request's budgets
// and panic isolation, rendering the wirelist and the diagnostics
// report into a cacheable outcome.
func (s *Server) extractOnce(ctx context.Context, body []byte, p params) (c *cached, err error) {
	defer func() {
		if err != nil {
			var pe *guard.PanicError
			if errors.As(err, &pe) {
				s.met.panics.Add(1)
			}
		}
	}()
	defer guard.Recover(StageRequest, &err)
	if err := guard.Inject(StageRequest); err != nil {
		return nil, err
	}
	limits := s.opt.Limits
	limits.MaxConcurrent = 0 // concurrency is the admission layer's job
	res, err := s.eng.ReaderContext(ctx, bytes.NewReader(body), extract.Options{
		Workers:        s.opt.Workers,
		FlattenWorkers: s.opt.FlattenWorkers,
		Lenient:        p.lenient,
		Limits:         limits,
	})
	if err != nil {
		return nil, err
	}
	res.Netlist.Name = p.name
	buf := s.eng.GetOutBuf()
	out, werr := wirelist.AppendTo(buf, res.Netlist, wirelist.Options{})
	if werr != nil {
		s.eng.PutOutBuf(out)
		return nil, werr
	}
	c = &cached{
		ok:       res.Diagnostics.Errors() == 0,
		wirelist: append([]byte(nil), out...),
	}
	s.eng.PutOutBuf(out)
	if res.Diagnostics.Len() > 0 {
		var diagBuf bytes.Buffer
		if derr := diag.WriteJSON(&diagBuf, p.name, &res.Diagnostics); derr == nil {
			c.diagJSON = diagBuf.Bytes()
		}
	}
	return c, nil
}

// extractDoc is the ?diag=json response for a clean run: the
// diagnostics report (null when silent) plus the wirelist.
type extractDoc struct {
	File     string          `json:"file"`
	Report   json.RawMessage `json:"report,omitempty"`
	Wirelist string          `json:"wirelist"`
}

func (s *Server) writeOutcome(w http.ResponseWriter, out outcome, p params) {
	switch {
	case out.err != nil:
		s.writeProblem(w, problemFor(out.err))
	case out.res.ok:
		h := w.Header()
		h.Set("X-Cache", cacheHeader(out.fromCache))
		if p.diagJSON {
			h.Set("Content-Type", "application/json")
			doc := extractDoc{File: p.name, Report: out.res.diagJSON, Wirelist: string(out.res.wirelist)}
			body, _ := json.MarshalIndent(doc, "", "  ")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(body)
			_, _ = w.Write([]byte("\n"))
		} else {
			h.Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(out.res.wirelist)
		}
		s.met.countStatus(http.StatusOK)
	default:
		// Error-severity diagnostics: the CLI exits 1 here; HTTP says
		// 422 and hands over everything — the report and the salvaged
		// wirelist — so a lenient client loses nothing.
		pr := newProblem(http.StatusUnprocessableEntity, "diagnostics", "input carries error diagnostics")
		pr.ExitCode = 1
		pr.Diagnostics = out.res.diagJSON
		pr.Wirelist = string(out.res.wirelist)
		w.Header().Set("X-Cache", cacheHeader(out.fromCache))
		s.writeProblem(w, pr)
	}
}

func cacheHeader(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// batchEntry is one file's result inside a batch response: the
// wirelist on success, a problem document otherwise.
type batchEntry struct {
	File     string          `json:"file"`
	Status   int             `json:"status"`
	Wirelist string          `json:"wirelist,omitempty"`
	Report   json.RawMessage `json:"report,omitempty"`
	Problem  *Problem        `json:"problem,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	p, perr := parseParams(r)
	if perr != nil {
		pr := newProblem(http.StatusBadRequest, "bad-request", "invalid query parameter")
		pr.Detail = perr.Error()
		pr.ExitCode = 2
		s.writeProblem(w, pr)
		return
	}
	if !isMultipart(r) {
		pr := newProblem(http.StatusBadRequest, "bad-body", "batch requires a multipart/form-data body")
		pr.ExitCode = 2
		s.writeProblem(w, pr)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	// One admission slot covers the whole batch: files run
	// sequentially inside it, so a batch cannot multiply concurrency.
	release, shed := s.admitAll(ctx, r)
	if shed != nil {
		s.writeProblem(w, *shed)
		return
	}
	defer release()
	s.met.accepted.Add(1)

	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	mr, err := r.MultipartReader()
	if err != nil {
		s.writeProblem(w, uploadProblem(err))
		return
	}
	var results []batchEntry
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			s.writeProblem(w, uploadProblem(err))
			return
		}
		if part.FormName() != "file" && part.FileName() == "" {
			continue
		}
		if len(results) >= maxBatchParts {
			pr := newProblem(http.StatusRequestEntityTooLarge, "too-many-parts",
				fmt.Sprintf("batch holds more than %d files", maxBatchParts))
			pr.ExitCode = 4
			s.writeProblem(w, pr)
			return
		}
		body, err := s.readBody(part)
		if err != nil {
			s.writeProblem(w, uploadProblem(err))
			return
		}
		fp := p
		fp.name = part.FileName()
		if fp.name == "" || len(fp.name) > maxNameLen {
			fp.name = fmt.Sprintf("part-%d", len(results))
		}
		out := s.run(ctx, body, fp)
		results = append(results, batchResult(out, fp))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Results []batchEntry `json:"results"`
	}{Results: results})
	s.met.countStatus(http.StatusOK)
}

func batchResult(out outcome, p params) batchEntry {
	e := batchEntry{File: p.name}
	switch {
	case out.err != nil:
		pr := problemFor(out.err)
		e.Status = pr.Status
		e.Problem = &pr
	case out.res.ok:
		e.Status = http.StatusOK
		e.Wirelist = string(out.res.wirelist)
		e.Report = out.res.diagJSON
	default:
		pr := newProblem(http.StatusUnprocessableEntity, "diagnostics", "input carries error diagnostics")
		pr.ExitCode = 1
		pr.Diagnostics = out.res.diagJSON
		pr.Wirelist = string(out.res.wirelist)
		e.Status = pr.Status
		e.Problem = &pr
	}
	return e
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		p := s.shedProblem(errDraining)
		s.writeProblem(w, p)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ok\n")
	s.met.countStatus(http.StatusOK)
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	entries, bytes := s.cache.diskStats()
	diskIO := s.cache.diskIO()
	st := Stats{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Draining:       s.Draining(),
		InFlight:       s.adm.gate.InFlight(),
		Queued:         int(s.adm.queued.Load()),
		Accepted:       s.met.accepted.Load(),
		Extractions:    s.met.extractions.Load(),
		CacheHits:      s.met.cacheHits.Load(),
		DedupWaits:     s.met.dedupWaits.Load(),
		Panics:         s.met.panics.Load(),
		ShedQueueFull:  s.met.shedQueueFull.Load(),
		ShedQueueWait:  s.met.shedQueueWait.Load(),
		ShedTenant:     s.met.shedTenant.Load(),
		ShedDrain:      s.met.shedDrain.Load(),
		ByStatus:       s.met.statusSnapshot(),
		CacheEntries:   entries,
		CacheBytes:     bytes,
		CacheDegraded:  s.cacheWarn != "",
		CacheError:     s.cacheWarn,
		CacheGetErrors: diskIO.GetErrors,
		CachePutErrors: diskIO.PutErrors,
		Goroutines:     runtime.NumGoroutine(),
		PeakRSSBytes:   prof.PeakRSSBytes(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
	s.met.countStatus(http.StatusOK)
}
