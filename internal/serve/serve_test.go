package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ace/internal/cif"
	"ace/internal/extract"
	"ace/internal/gen"
	"ace/internal/guard"
	"ace/internal/wirelist"
)

// cherryCIF renders the cherry benchmark chip to CIF text — a real,
// clean design for good-path requests.
func cherryCIF(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := cif.Write(&buf, gen.MustBenchChip("cherry").File); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// wantWirelist renders the reference wirelist for src through the same
// library path the ace CLI uses, for byte-identity assertions.
func wantWirelist(t testing.TB, src []byte, name string, lenient bool, limits guard.Limits) []byte {
	t.Helper()
	res, err := extract.Reader(bytes.NewReader(src), extract.Options{Lenient: lenient, Limits: limits})
	if err != nil {
		t.Fatal(err)
	}
	res.Netlist.Name = name
	out, err := wirelist.AppendTo(nil, res.Netlist, wirelist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// bombCIF builds a hierarchy bomb: depth levels of fanOut-way calls
// over one leaf box, so full expansion is fanOut^(depth-1) boxes.
func bombCIF(depth, fanOut int) []byte {
	var b strings.Builder
	b.WriteString("DS 1; L ND; B 4 4 0 0; DF;\n")
	for d := 2; d <= depth; d++ {
		fmt.Fprintf(&b, "DS %d;", d)
		// Offsets in both axes spread the copies across scanlines, so
		// the sweep hits budget checkpoints while expanding instead of
		// one gigantic stop.
		for i := 0; i < fanOut; i++ {
			fmt.Fprintf(&b, " C %d T %d %d;", d-1, i*10, i*7)
		}
		b.WriteString(" DF;\n")
	}
	fmt.Fprintf(&b, "C %d;\nE\n", depth)
	return []byte(b.String())
}

func newTestServer(t testing.TB, opt Options) *Server {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// checkNoLeaks fails the test if the goroutine count does not return
// to (near) its pre-test base.
func checkNoLeaks(t *testing.T, base int) {
	t.Helper()
	if n, ok := guard.WaitGoroutines(base+2, 2*time.Second); !ok {
		t.Errorf("goroutine leak: %d alive, want <= %d", n, base+2)
	}
}

func postRaw(t testing.TB, s *Server, path string, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// decodeProblem asserts the response is problem JSON and decodes it.
func decodeProblem(t *testing.T, w *httptest.ResponseRecorder) Problem {
	t.Helper()
	if ct := w.Header().Get("Content-Type"); ct != "application/problem+json" {
		t.Fatalf("Content-Type = %q, want application/problem+json (body: %.200s)", ct, w.Body.String())
	}
	var p Problem
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatalf("problem JSON does not parse: %v (body: %.200s)", err, w.Body.String())
	}
	if p.Status != w.Code {
		t.Errorf("problem status %d != HTTP status %d", p.Status, w.Code)
	}
	if p.Code == "" || p.Type != problemType+p.Code {
		t.Errorf("problem code/type malformed: code=%q type=%q", p.Code, p.Type)
	}
	return p
}

func getStats(t *testing.T, s *Server) Stats {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/statz", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/statz = %d", w.Code)
	}
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestExtractByteIdentity(t *testing.T) {
	base := runtime.NumGoroutine()
	src := cherryCIF(t)
	s := newTestServer(t, Options{CacheDir: t.TempDir()})

	want := wantWirelist(t, src, "cherry", false, guard.Limits{})
	w := postRaw(t, s, "/extract?name=cherry", src, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %.300s", w.Code, w.Body.String())
	}
	if got := w.Body.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("wirelist differs from library output (%d vs %d bytes)", len(got), len(want))
	}
	if h := w.Header().Get("X-Cache"); h != "miss" {
		t.Errorf("first X-Cache = %q, want miss", h)
	}

	// Identical upload again: served from the persistent tier,
	// byte-identical, no second extraction.
	w2 := postRaw(t, s, "/extract?name=cherry", src, nil)
	if w2.Code != http.StatusOK || !bytes.Equal(w2.Body.Bytes(), want) {
		t.Fatalf("cached replay mismatch: status %d", w2.Code)
	}
	if h := w2.Header().Get("X-Cache"); h != "hit" {
		t.Errorf("second X-Cache = %q, want hit", h)
	}
	st := getStats(t, s)
	if st.Extractions != 1 || st.CacheHits != 1 {
		t.Errorf("extractions=%d cacheHits=%d, want 1 and 1", st.Extractions, st.CacheHits)
	}
	checkNoLeaks(t, base)
}

func TestExtractMultipartAndDiagJSON(t *testing.T) {
	src := cherryCIF(t)
	s := newTestServer(t, Options{})

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("file", "cherry.cif")
	if err != nil {
		t.Fatal(err)
	}
	fw.Write(src)
	mw.Close()

	req := httptest.NewRequest(http.MethodPost, "/extract?diag=json", &buf)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %.300s", w.Code, w.Body.String())
	}
	var doc struct {
		File     string `json:"file"`
		Wirelist string `json:"wirelist"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.File != "cherry.cif" {
		t.Errorf("file = %q, want cherry.cif (multipart file name)", doc.File)
	}
	want := wantWirelist(t, src, "cherry.cif", false, guard.Limits{})
	if doc.Wirelist != string(want) {
		t.Error("diag=json wirelist differs from library output")
	}
}

func TestMalformedStrictIs422(t *testing.T) {
	s := newTestServer(t, Options{})
	w := postRaw(t, s, "/extract", []byte("this is not CIF at all ;;;"), nil)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (body %.300s)", w.Code, w.Body.String())
	}
	p := decodeProblem(t, w)
	if p.Code != "invalid-input" || p.ExitCode != 1 {
		t.Errorf("code=%q exit=%d, want invalid-input/1", p.Code, p.ExitCode)
	}
}

func TestLenientDamageIs422WithSalvage(t *testing.T) {
	// One good box, then parse damage: lenient mode extracts what it
	// can and reports Error-severity diagnostics — the service answers
	// 422 carrying both the report and the salvaged wirelist.
	src := []byte("L ND; B 100 100 0 0;\nB oops;\nE\n")
	s := newTestServer(t, Options{})
	w := postRaw(t, s, "/extract?lenient=1&name=dmg", src, nil)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (body %.300s)", w.Code, w.Body.String())
	}
	p := decodeProblem(t, w)
	if p.Code != "diagnostics" || p.ExitCode != 1 {
		t.Errorf("code=%q exit=%d, want diagnostics/1", p.Code, p.ExitCode)
	}
	if len(p.Diagnostics) == 0 {
		t.Error("422 carries no diagnostics report")
	}
	if p.Wirelist == "" {
		t.Error("lenient 422 carries no salvaged wirelist")
	}
	want := wantWirelist(t, src, "dmg", true, guard.Limits{})
	if p.Wirelist != string(want) {
		t.Error("salvaged wirelist differs from library output")
	}
}

func TestHierarchyBombIs413(t *testing.T) {
	base := runtime.NumGoroutine()
	// MaxBoxes catches the lazily streamed expansion in the sweep;
	// MaxExpandedBoxes catches the pre-flattener arena path.
	s := newTestServer(t, Options{
		Limits: guard.Limits{MaxBoxes: 10_000, MaxExpandedBoxes: 10_000},
	})
	// 8^9 ≈ 134M boxes if expanded; the budget stops it at 10k.
	t0 := time.Now()
	w := postRaw(t, s, "/extract", bombCIF(10, 8), nil)
	if d := time.Since(t0); d > 10*time.Second {
		t.Errorf("bomb took %v to reject; budgets should fail fast", d)
	}
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body %.300s)", w.Code, w.Body.String())
	}
	p := decodeProblem(t, w)
	if p.Code != "limit" || p.ExitCode != 4 {
		t.Errorf("code=%q exit=%d, want limit/4", p.Code, p.ExitCode)
	}
	checkNoLeaks(t, base)
}

func TestTimeoutIs504(t *testing.T) {
	base := runtime.NumGoroutine()
	fp := &guard.Failpoint{Stage: StageRequest, Kind: guard.FaultDelay, Delay: 250 * time.Millisecond}
	defer guard.SetInjector(fp)()

	s := newTestServer(t, Options{RequestTimeout: 50 * time.Millisecond})
	w := postRaw(t, s, "/extract", cherryCIF(t), nil)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %.300s)", w.Code, w.Body.String())
	}
	p := decodeProblem(t, w)
	if p.Code != "timeout" || p.ExitCode != 3 {
		t.Errorf("code=%q exit=%d, want timeout/3", p.Code, p.ExitCode)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("504 carries no Retry-After")
	}
	checkNoLeaks(t, base)
}

func TestPanicIsolation(t *testing.T) {
	base := runtime.NumGoroutine()
	s := newTestServer(t, Options{})
	src := cherryCIF(t)

	fp := &guard.Failpoint{Stage: StageRequest, Kind: guard.FaultPanic}
	restore := guard.SetInjector(fp)
	w := postRaw(t, s, "/extract", src, nil)
	restore()

	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %.300s)", w.Code, w.Body.String())
	}
	p := decodeProblem(t, w)
	if p.Code != "panic" {
		t.Errorf("code = %q, want panic", p.Code)
	}
	if p.Stage != StageRequest {
		t.Errorf("stage = %q, want %q", p.Stage, StageRequest)
	}

	// The process survived; the very same server serves the very same
	// upload cleanly.
	w2 := postRaw(t, s, "/extract", src, nil)
	if w2.Code != http.StatusOK {
		t.Fatalf("post-panic request = %d, want 200 (body %.300s)", w2.Code, w2.Body.String())
	}
	if st := getStats(t, s); st.Panics != 1 {
		t.Errorf("panics counter = %d, want 1", st.Panics)
	}
	checkNoLeaks(t, base)
}

// waitStats polls /statz until cond holds or the deadline passes.
func waitStats(t *testing.T, s *Server, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if cond(getStats(t, s)) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats condition not reached: %+v", getStats(t, s))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAdmissionOverflowSheds429(t *testing.T) {
	base := runtime.NumGoroutine()
	fp := &guard.Failpoint{Stage: StageRequest, Kind: guard.FaultDelay, Delay: 300 * time.Millisecond}
	defer guard.SetInjector(fp)()

	s := newTestServer(t, Options{
		MaxInFlight: 1,
		QueueDepth:  1,
		QueueWait:   5 * time.Second,
	})
	// Distinct bodies, so single-flight cannot collapse them.
	body := func(i int) []byte { return []byte(fmt.Sprintf("(v%d) L ND; B 10 10 0 0;\nE\n", i)) }

	var wg sync.WaitGroup
	codes := make([]int, 3)
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i] = postRaw(t, s, "/extract", body(i), nil).Code
		}()
	}
	launch(0) // takes the only slot
	waitStats(t, s, func(st Stats) bool { return st.InFlight == 1 })
	launch(1) // waits in the queue
	waitStats(t, s, func(st Stats) bool { return st.Queued == 1 })

	// Queue full: this one must be shed immediately with 429.
	w := postRaw(t, s, "/extract", body(2), nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429 (body %.300s)", w.Code, w.Body.String())
	}
	p := decodeProblem(t, w)
	if p.Code != "queue-full" || p.ExitCode != 4 {
		t.Errorf("code=%q exit=%d, want queue-full/4", p.Code, p.ExitCode)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}

	wg.Wait()
	for i, c := range codes[:2] {
		if c != http.StatusOK {
			t.Errorf("admitted request %d = %d, want 200", i, c)
		}
	}
	if st := getStats(t, s); st.ShedQueueFull != 1 {
		t.Errorf("shed_queue_full = %d, want 1", st.ShedQueueFull)
	}
	checkNoLeaks(t, base)
}

func TestQueueWaitSheds429(t *testing.T) {
	fp := &guard.Failpoint{Stage: StageRequest, Kind: guard.FaultDelay, Delay: 400 * time.Millisecond}
	defer guard.SetInjector(fp)()

	s := newTestServer(t, Options{
		MaxInFlight: 1,
		QueueDepth:  4,
		QueueWait:   30 * time.Millisecond,
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postRaw(t, s, "/extract", []byte("(a) L ND; B 10 10 0 0;\nE\n"), nil)
	}()
	waitStats(t, s, func(st Stats) bool { return st.InFlight == 1 })

	// This one queues, but no slot frees within QueueWait.
	w := postRaw(t, s, "/extract", []byte("(b) L ND; B 10 10 0 0;\nE\n"), nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %.300s)", w.Code, w.Body.String())
	}
	if p := decodeProblem(t, w); p.Code != "queue-timeout" {
		t.Errorf("code = %q, want queue-timeout", p.Code)
	}
	wg.Wait()
}

func TestDrainShedsAndFinishesInFlight(t *testing.T) {
	base := runtime.NumGoroutine()
	fp := &guard.Failpoint{Stage: StageRequest, Kind: guard.FaultDelay, Delay: 200 * time.Millisecond}
	defer guard.SetInjector(fp)()

	s := newTestServer(t, Options{MaxInFlight: 2})
	var wg sync.WaitGroup
	var inFlightCode int
	wg.Add(1)
	go func() {
		defer wg.Done()
		inFlightCode = postRaw(t, s, "/extract", []byte("(d) L ND; B 10 10 0 0;\nE\n"), nil).Code
	}()
	waitStats(t, s, func(st Stats) bool { return st.InFlight == 1 })

	s.BeginDrain()

	// New work is refused with 503 + Retry-After…
	w := postRaw(t, s, "/extract", []byte("(e) L ND; B 10 10 0 0;\nE\n"), nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status during drain = %d, want 503", w.Code)
	}
	if p := decodeProblem(t, w); p.Code != "draining" {
		t.Errorf("code = %q, want draining", p.Code)
	}
	// …and health flips to draining.
	hw := httptest.NewRecorder()
	s.ServeHTTP(hw, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hw.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", hw.Code)
	}

	// …but the in-flight request runs to a clean completion, and Drain
	// returns once it has.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	if inFlightCode != http.StatusOK {
		t.Errorf("in-flight request during drain = %d, want 200", inFlightCode)
	}
	checkNoLeaks(t, base)
}

func TestTenantIsolation(t *testing.T) {
	fp := &guard.Failpoint{Stage: StageRequest, Kind: guard.FaultDelay, Delay: 300 * time.Millisecond}
	defer guard.SetInjector(fp)()

	s := newTestServer(t, Options{MaxInFlight: 4, TenantInFlight: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postRaw(t, s, "/extract", []byte("(t1) L ND; B 10 10 0 0;\nE\n"),
			map[string]string{"X-Ace-Tenant": "alpha"})
	}()
	waitStats(t, s, func(st Stats) bool { return st.InFlight == 1 })

	// alpha's second concurrent request: shed by the tenant gate even
	// though global capacity remains.
	w := postRaw(t, s, "/extract", []byte("(t2) L ND; B 10 10 0 0;\nE\n"),
		map[string]string{"X-Ace-Tenant": "alpha"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("tenant overflow = %d, want 429 (body %.300s)", w.Code, w.Body.String())
	}
	if p := decodeProblem(t, w); p.Code != "tenant-overloaded" {
		t.Errorf("code = %q, want tenant-overloaded", p.Code)
	}

	// A different tenant is untouched by alpha's load.
	w2 := postRaw(t, s, "/extract", []byte("(t3) L ND; B 10 10 0 0;\nE\n"),
		map[string]string{"X-Ace-Tenant": "bravo"})
	if w2.Code != http.StatusOK {
		t.Errorf("other tenant = %d, want 200 (body %.300s)", w2.Code, w2.Body.String())
	}
	wg.Wait()
	if st := getStats(t, s); st.ShedTenant != 1 {
		t.Errorf("shed_tenant = %d, want 1", st.ShedTenant)
	}
}

func TestSingleFlightDedup(t *testing.T) {
	base := runtime.NumGoroutine()
	fp := &guard.Failpoint{Stage: StageRequest, Kind: guard.FaultDelay, Delay: 150 * time.Millisecond}
	defer guard.SetInjector(fp)()

	s := newTestServer(t, Options{MaxInFlight: 8})
	src := cherryCIF(t)
	want := wantWirelist(t, src, "c", false, guard.Limits{})

	const n = 6
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postRaw(t, s, "/extract?name=c", src, nil)
			codes[i], bodies[i] = w.Code, w.Body.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d = %d, want 200", i, codes[i])
		}
		if !bytes.Equal(bodies[i], want) {
			t.Errorf("request %d wirelist differs", i)
		}
	}
	// The burst of identical uploads collapsed to ONE extraction: the
	// failpoint saw exactly one pipeline entry.
	if hits := fp.Hits(); hits != 1 {
		t.Errorf("pipeline entries = %d, want 1 (single-flight)", hits)
	}
	st := getStats(t, s)
	if st.Extractions != 1 {
		t.Errorf("extractions = %d, want 1", st.Extractions)
	}
	if st.DedupWaits != n-1 {
		t.Errorf("dedup_waits = %d, want %d", st.DedupWaits, n-1)
	}
	checkNoLeaks(t, base)
}

func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	src := cherryCIF(t)

	s1 := newTestServer(t, Options{CacheDir: dir})
	w1 := postRaw(t, s1, "/extract?name=c", src, nil)
	if w1.Code != http.StatusOK {
		t.Fatalf("first server: %d", w1.Code)
	}

	// A fresh daemon over the same cache directory: zero extractions.
	s2 := newTestServer(t, Options{CacheDir: dir})
	w2 := postRaw(t, s2, "/extract?name=c", src, nil)
	if w2.Code != http.StatusOK {
		t.Fatalf("second server: %d", w2.Code)
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("restarted daemon served different bytes")
	}
	if h := w2.Header().Get("X-Cache"); h != "hit" {
		t.Errorf("X-Cache = %q, want hit", h)
	}
	st := getStats(t, s2)
	if st.Extractions != 0 || st.CacheHits != 1 {
		t.Errorf("extractions=%d cacheHits=%d, want 0 and 1", st.Extractions, st.CacheHits)
	}

	// Different name → different output → different key: no false hit.
	w3 := postRaw(t, s2, "/extract?name=other", src, nil)
	if h := w3.Header().Get("X-Cache"); h != "miss" {
		t.Errorf("renamed upload X-Cache = %q, want miss", h)
	}
}

func TestBatch(t *testing.T) {
	s := newTestServer(t, Options{CacheDir: t.TempDir()})
	src := cherryCIF(t)

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for _, part := range []struct {
		name string
		body []byte
	}{
		{"good.cif", src},
		{"bad.cif", []byte("garbage ;;;")},
		{"good.cif", src}, // identical to the first: must hit cache
	} {
		fw, err := mw.CreateFormFile("file", part.name)
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(part.body)
	}
	mw.Close()

	req := httptest.NewRequest(http.MethodPost, "/batch", &buf)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status = %d (body %.300s)", w.Code, w.Body.String())
	}
	var doc struct {
		Results []struct {
			File     string   `json:"file"`
			Status   int      `json:"status"`
			Wirelist string   `json:"wirelist"`
			Problem  *Problem `json:"problem"`
		} `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(doc.Results))
	}
	want := string(wantWirelist(t, src, "good.cif", false, guard.Limits{}))
	if r := doc.Results[0]; r.Status != 200 || r.Wirelist != want {
		t.Errorf("result[0]: status=%d, wirelist match=%v", r.Status, r.Wirelist == want)
	}
	if r := doc.Results[1]; r.Status != 422 || r.Problem == nil || r.Problem.Code != "invalid-input" {
		t.Errorf("result[1]: status=%d problem=%+v, want 422 invalid-input", r.Status, r.Problem)
	}
	if r := doc.Results[2]; r.Status != 200 || r.Wirelist != want {
		t.Errorf("result[2]: status=%d, wirelist match=%v", r.Status, r.Wirelist == want)
	}
	// One extraction per distinct (content, name): the duplicate part
	// was served from cache.
	st := getStats(t, s)
	if st.Extractions != 2 {
		t.Errorf("extractions = %d, want 2", st.Extractions)
	}
	if st.CacheHits != 1 {
		t.Errorf("cache_hits = %d, want 1", st.CacheHits)
	}
}

func TestRequestHygiene(t *testing.T) {
	s := newTestServer(t, Options{MaxBodyBytes: 1024})

	t.Run("wrong method", func(t *testing.T) {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/extract", nil))
		if w.Code != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", w.Code)
		}
		if p := decodeProblem(t, w); p.Code != "method-not-allowed" {
			t.Errorf("code = %q", p.Code)
		}
		if w.Header().Get("Allow") != "POST" {
			t.Error("405 carries no Allow header")
		}
	})
	t.Run("unknown path", func(t *testing.T) {
		w := postRaw(t, s, "/nope", nil, nil)
		if w.Code != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", w.Code)
		}
		if p := decodeProblem(t, w); p.Code != "not-found" {
			t.Errorf("code = %q", p.Code)
		}
	})
	t.Run("bad query", func(t *testing.T) {
		w := postRaw(t, s, "/extract?lenient=maybe", []byte("E\n"), nil)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", w.Code)
		}
		if p := decodeProblem(t, w); p.Code != "bad-request" {
			t.Errorf("code = %q", p.Code)
		}
	})
	t.Run("oversized body", func(t *testing.T) {
		w := postRaw(t, s, "/extract", bytes.Repeat([]byte("(pad pad pad)\n"), 1024), nil)
		if w.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d, want 413 (body %.300s)", w.Code, w.Body.String())
		}
		if p := decodeProblem(t, w); p.Code != "body-too-large" || p.ExitCode != 4 {
			t.Errorf("code=%q exit=%d, want body-too-large/4", p.Code, p.ExitCode)
		}
	})
	t.Run("empty multipart", func(t *testing.T) {
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		mw.WriteField("note", "no file here")
		mw.Close()
		req := httptest.NewRequest(http.MethodPost, "/extract", &buf)
		req.Header.Set("Content-Type", mw.FormDataContentType())
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400 (body %.300s)", w.Code, w.Body.String())
		}
	})
	t.Run("batch without multipart", func(t *testing.T) {
		w := postRaw(t, s, "/batch", []byte("E\n"), nil)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", w.Code)
		}
	})
}
