package sim

import (
	"testing"

	"ace/internal/drc"
	"ace/internal/extract"
	"ace/internal/frontend"
	"ace/internal/gen"
)

// TestNORPlaneTruthTable verifies a programmed NOR plane end to end:
// layout → extraction → switch-level simulation. Row r computes
// NOR over its programmed inputs.
func TestNORPlaneTruthTable(t *testing.T) {
	program := [][]bool{
		{true, false}, // PROD0 = ¬A
		{false, true}, // PROD1 = ¬B
		{true, true},  // PROD2 = ¬(A ∨ B)
	}
	w := gen.NORPlane(program)
	res, err := extract.File(w.File, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(res.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	not := func(v Value) Value {
		if v == H {
			return L
		}
		return H
	}
	nor := func(a, b Value) Value {
		if a == H || b == H {
			return L
		}
		return H
	}
	for _, a := range []Value{L, H} {
		for _, b := range []Value{L, H} {
			s.Set("IN0", a)
			s.Set("IN1", b)
			if err := s.Eval(); err != nil {
				t.Fatal(err)
			}
			check := func(name string, want Value) {
				got, err := s.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("A=%v B=%v: %s=%v, want %v\n%s", a, b, name, got, want, res.Netlist)
				}
			}
			check("PROD0", not(a))
			check("PROD1", not(b))
			check("PROD2", nor(a, b))
		}
	}
}

// TestNORPlaneDRCClean: the generated plane must pass the rule deck.
func TestNORPlaneDRCClean(t *testing.T) {
	w := gen.NORPlane([][]bool{{true, true, false}, {false, true, true}})
	stream, err := frontend.New(w.File, frontend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vs := drc.CheckBoxes(stream.Drain(), drc.Options{})
	if len(vs) != 0 {
		t.Fatalf("%d violations: %v", len(vs), vs[:min(len(vs), 8)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
