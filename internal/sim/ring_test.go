package sim

import (
	"testing"

	"ace/internal/extract"
	"ace/internal/gen"
)

func ringSim(t *testing.T, n int) (*Simulator, int) {
	t.Helper()
	w := gen.RingOscillator(n)
	res, err := extract.File(w.File, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Netlist.Devices); got != w.WantDevices {
		t.Fatalf("ring(%d): devices %d, want %d", n, got, w.WantDevices)
	}
	if got := len(res.Netlist.Nets); got != w.WantNets {
		t.Fatalf("ring(%d): nets %d, want %d\n%s", n, got, w.WantNets, res.Netlist)
	}
	s, err := New(res.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	return s, w.WantDevices
}

func TestRingOscillatorOddIsX(t *testing.T) {
	// An odd ring has no stable state: the fixpoint iteration must
	// give up and report X rather than hanging or picking a value.
	for _, n := range []int{3, 5} {
		s, _ := ringSim(t, n)
		if err := s.Eval(); err != nil {
			t.Fatal(err)
		}
		if got, _ := s.Get("TAP"); got != X {
			t.Fatalf("ring(%d): TAP=%v, want X (oscillating)", n, got)
		}
	}
}

func TestRingOscillatorWaveform(t *testing.T) {
	// Kick a 3-ring by driving the tap, release it, and step the
	// network: the wavefront rotates one inverter per unit delay, so
	// the tap toggles with period 3 (2n·unit/2 per half-cycle for a
	// ring of n inverters under synchronous update).
	s, _ := ringSim(t, 3)
	if err := s.Set("TAP", H); err != nil {
		t.Fatal(err)
	}
	if err := s.Eval(); err != nil {
		t.Fatal(err)
	}
	s.Release("TAP")
	wave, err := s.Trace("TAP", 18)
	if err != nil {
		t.Fatal(err)
	}
	// The waveform must contain both levels (oscillation), no X, and
	// be periodic with period 2n = 6.
	saw := map[Value]int{}
	for _, v := range wave {
		saw[v]++
	}
	if saw[X] != 0 {
		t.Fatalf("X in waveform: %v", wave)
	}
	if saw[L] == 0 || saw[H] == 0 {
		t.Fatalf("not oscillating: %v", wave)
	}
	for i := 6; i < len(wave); i++ {
		if wave[i] != wave[i-6] {
			t.Fatalf("period not 6: %v", wave)
		}
	}
}

func TestRingEvenIsBistable(t *testing.T) {
	// An even ring is a latch: undriven it is X (either state is
	// possible); forcing the tap and releasing it must hold the value.
	s, _ := ringSim(t, 4)
	if err := s.Eval(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("TAP"); got != X {
		t.Fatalf("undriven latch TAP=%v, want X", got)
	}
	if err := s.Set("TAP", H); err != nil {
		t.Fatal(err)
	}
	if err := s.Eval(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("TAP"); got != H {
		t.Fatalf("driven TAP=%v, want 1", got)
	}
}
