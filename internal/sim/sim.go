// Package sim is a switch-level logic simulator for extracted NMOS
// wirelists — the first of the downstream consumers the paper's
// introduction motivates ("Logic simulators help validate the logical
// correctness"). It models ratioed NMOS: depletion loads conduct
// always but weakly; enhancement pull-downs conduct strongly when
// their gate is high, so a fighting node resolves low.
package sim

import (
	"fmt"

	"ace/internal/netlist"
	"ace/internal/tech"
)

// Value is a three-state logic level.
type Value int8

const (
	X Value = iota // unknown / conflict
	L              // logic 0
	H              // logic 1
)

func (v Value) String() string {
	switch v {
	case L:
		return "0"
	case H:
		return "1"
	}
	return "X"
}

// strength orders signal sources: rails beat strong (enhancement
// path) beats weak (through a depletion device) beats floating.
type strength int8

const (
	stNone strength = iota
	stWeak
	stStrong
	stRail
)

// Simulator evaluates an extracted netlist.
type Simulator struct {
	nl *netlist.Netlist

	vdd, gnd int
	inputs   map[int]Value
	values   []Value

	// adjacency: device indices touching each net via source/drain.
	byNet [][]int

	maxIters int
}

// New builds a simulator. The netlist must contain nets named VDD and
// GND (the extractor attaches these from CIF labels).
func New(nl *netlist.Netlist) (*Simulator, error) {
	vdd, ok := nl.NetByName("VDD")
	if !ok {
		return nil, fmt.Errorf("sim: no net named VDD")
	}
	gnd, ok := nl.NetByName("GND")
	if !ok {
		return nil, fmt.Errorf("sim: no net named GND")
	}
	s := &Simulator{
		nl:       nl,
		vdd:      vdd,
		gnd:      gnd,
		inputs:   map[int]Value{},
		values:   make([]Value, len(nl.Nets)),
		byNet:    make([][]int, len(nl.Nets)),
		maxIters: 4 * (len(nl.Devices) + 4),
	}
	for i, d := range nl.Devices {
		s.byNet[d.Source] = append(s.byNet[d.Source], i)
		if d.Drain != d.Source {
			s.byNet[d.Drain] = append(s.byNet[d.Drain], i)
		}
	}
	return s, nil
}

// Set drives the named net to a value (rail strength).
func (s *Simulator) Set(name string, v Value) error {
	i, ok := s.nl.NetByName(name)
	if !ok {
		return fmt.Errorf("sim: no net named %s", name)
	}
	if i == s.vdd || i == s.gnd {
		return fmt.Errorf("sim: cannot drive the %s rail", name)
	}
	s.inputs[i] = v
	return nil
}

// Release removes the drive from an input.
func (s *Simulator) Release(name string) {
	if i, ok := s.nl.NetByName(name); ok {
		delete(s.inputs, i)
	}
}

// Get reads the value of a named net after Eval.
func (s *Simulator) Get(name string) (Value, error) {
	i, ok := s.nl.NetByName(name)
	if !ok {
		return X, fmt.Errorf("sim: no net named %s", name)
	}
	return s.values[i], nil
}

// Value reads a net by index.
func (s *Simulator) Value(net int) Value { return s.values[net] }

// Eval relaxes the network to a fixpoint from an all-X start. Nets
// that never settle (ring oscillators, fighting inputs) come out X.
func (s *Simulator) Eval() error {
	n := len(s.nl.Nets)
	cur := make([]Value, n)
	for i := range cur {
		cur[i] = X
	}
	for it := 0; it < s.maxIters; it++ {
		next := s.step(cur)
		same := true
		for i := range next {
			if next[i] != cur[i] {
				same = false
				break
			}
		}
		cur = next
		if same {
			copy(s.values, cur)
			return nil
		}
	}
	// No fixpoint: report the disagreeing nets as X by running one
	// more step and X-ing the differences.
	last := s.step(cur)
	for i := range cur {
		if last[i] != cur[i] {
			cur[i] = X
		}
	}
	copy(s.values, cur)
	return nil
}

// Step advances the network one synchronous unit-delay step from its
// current state (every gate evaluates against the previous values
// simultaneously). Unlike Eval it preserves dynamic state, so
// feedback structures behave like hardware: a released ring oscillator
// rotates its wavefront one stage per step.
func (s *Simulator) Step() {
	next := s.step(s.values)
	copy(s.values, next)
}

// Trace drives the network for n unit-delay steps and records the
// named net after each one — a waveform, in the spirit of the timing
// checks the paper's introduction sends wirelists to simulators for.
func (s *Simulator) Trace(name string, n int) ([]Value, error) {
	idx, ok := s.nl.NetByName(name)
	if !ok {
		return nil, fmt.Errorf("sim: no net named %s", name)
	}
	out := make([]Value, n)
	for i := 0; i < n; i++ {
		s.Step()
		out[i] = s.values[idx]
	}
	return out, nil
}

// step computes one synchronous relaxation step: each net's value
// given the transistor states implied by prev.
func (s *Simulator) step(prev []Value) []Value {
	n := len(s.nl.Nets)
	val := make([]Value, n)
	str := make([]strength, n)
	for i := range val {
		val[i] = X
		str[i] = stNone
	}
	seed := func(i int, v Value) {
		val[i] = v
		str[i] = stRail
	}
	seed(s.vdd, H)
	seed(s.gnd, L)
	for i, v := range s.inputs {
		seed(i, v)
	}

	// Propagate until stable within the step: signals cross conducting
	// devices, degrading to weak through depletion loads and keeping
	// strength (capped at strong) through enhancement devices.
	type item struct{ net int }
	queue := make([]int, 0, n)
	inQueue := make([]bool, n)
	push := func(i int) {
		if !inQueue[i] {
			inQueue[i] = true
			queue = append(queue, i)
		}
	}
	push(s.vdd)
	push(s.gnd)
	for i := range s.inputs {
		push(i)
	}
	for len(queue) > 0 {
		net := queue[0]
		queue = queue[1:]
		inQueue[net] = false
		for _, di := range s.byNet[net] {
			d := &s.nl.Devices[di]
			on, degrade := s.conducts(d, prev)
			if on == L {
				continue // off
			}
			other := d.Source
			if other == net {
				other = d.Drain
			}
			v := val[net]
			st := str[net]
			if st == stNone {
				continue
			}
			if degrade {
				if st > stWeak {
					st = stWeak
				}
			} else if st > stStrong {
				st = stStrong
			}
			if on == X && v != X {
				// Conduction uncertain: the signal arrives as X.
				v = X
			}
			if st > str[other] {
				val[other] = v
				str[other] = st
				push(other)
			} else if st == str[other] && val[other] != v && val[other] != X {
				val[other] = X
				push(other)
			}
		}
	}
	return val
}

// conducts reports whether a device conducts under prev gate values
// (H=yes, L=no, X=maybe) and whether passing through it degrades the
// signal to weak.
func (s *Simulator) conducts(d *netlist.Device, prev []Value) (Value, bool) {
	switch d.Type {
	case tech.Depletion:
		return H, true // always on, weak (the NMOS load)
	case tech.Capacitor:
		return L, false
	default: // enhancement
		switch prev[d.Gate] {
		case H:
			return H, false
		case L:
			return L, false
		default:
			return X, false
		}
	}
}
