package sim

import (
	"testing"

	"ace/internal/extract"
	"ace/internal/gen"
	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/tech"
)

func chainSim(t *testing.T, n int) *Simulator {
	t.Helper()
	w := gen.InverterChain(n)
	res, err := extract.File(w.File, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(res.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInverterChainLogic(t *testing.T) {
	for _, n := range []int{1, 2, 3, 6} {
		s := chainSim(t, n)
		for _, in := range []Value{L, H} {
			if err := s.Set("IN", in); err != nil {
				t.Fatal(err)
			}
			if err := s.Eval(); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("OUT")
			if err != nil {
				t.Fatal(err)
			}
			want := in
			if n%2 == 1 { // odd number of inversions
				if in == H {
					want = L
				} else {
					want = H
				}
			}
			if got != want {
				t.Fatalf("n=%d in=%v: OUT=%v, want %v", n, in, got, want)
			}
		}
	}
}

func TestPaperInverter(t *testing.T) {
	res, err := extract.File(gen.Inverter(), extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(res.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[Value]Value{L: H, H: L}
	for in, want := range cases {
		if err := s.Set("INP", in); err != nil {
			t.Fatal(err)
		}
		if err := s.Eval(); err != nil {
			t.Fatal(err)
		}
		if got, _ := s.Get("OUT"); got != want {
			t.Fatalf("INP=%v: OUT=%v, want %v", in, got, want)
		}
	}
}

func TestNandGate(t *testing.T) {
	// Extract a 2-input NAND from the cell library and verify its
	// truth table end to end: layout → extraction → simulation.
	d := gen.NewDesign()
	c := gen.GateCell(d, "nand2", 2)
	d.CallTop(c, geom.Identity)
	h := gen.GateCellHeight(2)
	d.LabelTopOn("GND", 1*gen.Lambda, 2*gen.Lambda, tech.Metal)
	d.LabelTop("VDD", 1*gen.Lambda, (h-2)*gen.Lambda)
	d.LabelTop("A", 5*gen.Lambda, 7*gen.Lambda)
	d.LabelTop("B", 5*gen.Lambda, 13*gen.Lambda)
	d.LabelTop("Y", 27*gen.Lambda, (h-19)*gen.Lambda)
	res, err := extract.File(d.File(), extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(res.Netlist)
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Netlist)
	}
	truth := []struct{ a, b, y Value }{
		{L, L, H}, {L, H, H}, {H, L, H}, {H, H, L},
	}
	for _, tc := range truth {
		s.Set("A", tc.a)
		s.Set("B", tc.b)
		if err := s.Eval(); err != nil {
			t.Fatal(err)
		}
		if got, _ := s.Get("Y"); got != tc.y {
			t.Fatalf("NAND(%v,%v) = %v, want %v\n%s", tc.a, tc.b, got, tc.y, res.Netlist)
		}
	}
}

func TestUndrivenInputIsX(t *testing.T) {
	s := chainSim(t, 1)
	if err := s.Eval(); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("OUT"); got != X {
		t.Fatalf("undriven chain OUT=%v, want X", got)
	}
	// Driving and then releasing the input returns the output to X.
	s.Set("IN", H)
	s.Eval()
	if got, _ := s.Get("OUT"); got != L {
		t.Fatalf("OUT=%v, want 0", got)
	}
	s.Release("IN")
	s.Eval()
	if got, _ := s.Get("OUT"); got != X {
		t.Fatalf("released OUT=%v, want X", got)
	}
}

func TestErrors(t *testing.T) {
	nl := &netlist.Netlist{Nets: []netlist.Net{{Names: []string{"VDD"}}}}
	if _, err := New(nl); err == nil {
		t.Fatal("missing GND should error")
	}
	s := chainSim(t, 1)
	if err := s.Set("NOPE", H); err == nil {
		t.Fatal("unknown net should error")
	}
	if err := s.Set("VDD", L); err == nil {
		t.Fatal("driving a rail should error")
	}
	if _, err := s.Get("NOPE"); err == nil {
		t.Fatal("unknown net should error")
	}
}
