package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ace/internal/vfs"
)

// openFault opens a store over a FaultFS in a fresh directory.
func openFault(t *testing.T, opt Options) (*Store, *vfs.FaultFS) {
	t.Helper()
	ffs := vfs.NewFault(vfs.OS)
	opt.FS = ffs
	s, err := Open(filepath.Join(t.TempDir(), "cache"), opt)
	if err != nil {
		t.Fatal(err)
	}
	return s, ffs
}

func TestPutIsDurable(t *testing.T) {
	// The documented guarantee is fsynced temp + rename + fsynced dir;
	// this pins the syncs actually happening, not just the rename.
	s, ffs := openFault(t, Options{})
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got := ffs.Count(vfs.OpSync); got < 1 {
		t.Errorf("Put issued %d file syncs, want >= 1", got)
	}
	if got := ffs.Count(vfs.OpSyncDir); got < 1 {
		t.Errorf("Put issued %d dir syncs, want >= 1", got)
	}
	if got, ok := s.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

func TestPutUsesPidStampedTemps(t *testing.T) {
	s, ffs := openFault(t, Options{})
	// Freeze the rename so the temp is observable.
	ffs.FailOps(vfs.OpRename)
	ffs.FailFrom(1, vfs.ErrInjected)
	if err := s.Put("k", []byte("v")); err == nil {
		t.Fatal("Put succeeded with rename frozen")
	}
	ffs.Restore()
	// The failed attempt cleans its temp; re-freeze only the remove to
	// catch the name mid-flight instead.
	ffs.FailOps(vfs.OpRename, vfs.OpRemove)
	ffs.FailFrom(1, vfs.ErrInjected)
	s.Put("k", []byte("v"))
	ffs.Restore()
	ents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, de := range ents {
		if strings.HasPrefix(de.Name(), vfs.TmpPrefix) {
			found = true
			if vfs.IsOrphanTemp(de.Name(), time.Now(), time.Now()) {
				t.Errorf("own live temp %q classified as orphan", de.Name())
			}
		}
	}
	if !found {
		t.Fatal("no temp observed with rename+remove frozen")
	}
}

func TestGetIOErrorCountsAndMisses(t *testing.T) {
	s, ffs := openFault(t, Options{})
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// A pure miss is not an error.
	if _, ok := s.Get("absent"); ok {
		t.Fatal("absent key hit")
	}
	if got := s.IOCounters().GetErrors; got != 0 {
		t.Fatalf("plain miss counted as error: %d", got)
	}
	// An injected read failure is a miss plus a counted error.
	ffs.FailOps(vfs.OpReadFile)
	ffs.FailOnce(1, vfs.ErrInjected)
	if _, ok := s.Get("k"); ok {
		t.Fatal("Get succeeded under injected read failure")
	}
	ffs.Restore()
	if got := s.IOCounters().GetErrors; got != 1 {
		t.Fatalf("GetErrors = %d, want 1", got)
	}
	// The entry was not harmed: the next read hits.
	if got, ok := s.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("Get after restore = %q, %v", got, ok)
	}
	// Same through the buffered path (Open instead of ReadFile).
	ffs.FailOps(vfs.OpOpen)
	ffs.FailOnce(1, vfs.ErrInjected)
	var buf []byte
	if _, ok := s.GetBuf("k", &buf); ok {
		t.Fatal("GetBuf succeeded under injected open failure")
	}
	ffs.Restore()
	if got := s.IOCounters().GetErrors; got != 2 {
		t.Fatalf("GetErrors = %d, want 2", got)
	}
}

func TestPutFaultMatrix(t *testing.T) {
	// Whichever single op of the publish fails, Put must return an
	// error, count it, leave no entry and no temp, and the next Put of
	// the same key must succeed and verify.
	ops := []vfs.Op{vfs.OpCreateTemp, vfs.OpWrite, vfs.OpSync, vfs.OpClose, vfs.OpRename}
	for _, op := range ops {
		t.Run(op.String(), func(t *testing.T) {
			s, ffs := openFault(t, Options{})
			ffs.FailOps(op)
			ffs.FailOnce(1, vfs.ErrInjected)
			err := s.Put("k", []byte("payload"))
			ffs.Restore()
			if !errors.Is(err, vfs.ErrInjected) {
				t.Fatalf("Put = %v, want injected", err)
			}
			if got := s.IOCounters().PutErrors; got != 1 {
				t.Fatalf("PutErrors = %d, want 1", got)
			}
			if _, ok := s.Get("k"); ok {
				t.Fatal("entry appeared despite failed Put")
			}
			ents, _ := os.ReadDir(s.Dir())
			for _, de := range ents {
				if strings.HasPrefix(de.Name(), vfs.TmpPrefix) {
					t.Fatalf("failed Put leaked temp %q", de.Name())
				}
			}
			if err := s.Put("k", []byte("payload")); err != nil {
				t.Fatalf("retry Put: %v", err)
			}
			if got, ok := s.Get("k"); !ok || string(got) != "payload" {
				t.Fatalf("Get after retry = %q, %v", got, ok)
			}
		})
	}
}

func TestPutTornWriteNeverPublishes(t *testing.T) {
	// A write torn at byte k dies inside the temp; the destination name
	// must never carry a partial entry.
	for _, k := range []int{0, 1, 3, 7} {
		s, ffs := openFault(t, Options{})
		ffs.FailOps(vfs.OpWrite)
		ffs.FailOnce(1, vfs.ErrInjected)
		ffs.TornWrite(k)
		if err := s.Put("k", []byte("payload")); err == nil {
			t.Fatalf("k=%d: torn Put succeeded", k)
		}
		ffs.Restore()
		if _, ok := s.Get("k"); ok {
			t.Fatalf("k=%d: torn entry served", k)
		}
		if errs := s.VerifyAll(); len(errs) != 0 {
			t.Fatalf("k=%d: store dirty after torn write: %v", k, errs)
		}
	}
}

func TestPutENOSPCRetriesAfterGC(t *testing.T) {
	old := enospcBackoff
	enospcBackoff = 0
	defer func() { enospcBackoff = old }()

	s, ffs := openFault(t, Options{})
	ffs.FailOps(vfs.OpWrite)
	ffs.FailOnce(1, vfs.ErrNoSpace)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put with transient ENOSPC = %v, want recovered nil", err)
	}
	io := s.IOCounters()
	if io.ENOSPCRetries != 1 {
		t.Fatalf("ENOSPCRetries = %d, want 1", io.ENOSPCRetries)
	}
	if io.PutErrors != 0 {
		t.Fatalf("PutErrors = %d for a recovered Put", io.PutErrors)
	}
	if got, ok := s.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("Get after ENOSPC recovery = %q, %v", got, ok)
	}

	// A persistently full disk gives up after the one retry.
	ffs.FailOps(vfs.OpWrite)
	ffs.FailFrom(1, vfs.ErrNoSpace)
	err := s.Put("k2", []byte("v2"))
	ffs.Restore()
	if !vfs.IsNoSpace(err) {
		t.Fatalf("Put on full disk = %v, want ENOSPC", err)
	}
	io = s.IOCounters()
	if io.ENOSPCRetries != 2 || io.PutErrors != 1 {
		t.Fatalf("counters after full disk: %+v", io)
	}
}

func TestPowerCutFreezesWritesNotReads(t *testing.T) {
	s, ffs := openFault(t, Options{})
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	ffs.PowerCut()
	if err := s.Put("k2", []byte("v2")); !errors.Is(err, vfs.ErrPowerCut) {
		t.Fatalf("Put after power cut = %v", err)
	}
	// Reads still work — but the LRU touch (Chtimes) is also frozen,
	// which must not fail the Get.
	if got, ok := s.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("Get after power cut = %q, %v", got, ok)
	}
	if _, ok := s.Get("k2"); ok {
		t.Fatal("unpublished entry served after power cut")
	}
}

func TestLyingFsyncStillServesCorrectBytes(t *testing.T) {
	s, ffs := openFault(t, Options{})
	ffs.LieSync(true)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put under lying fsync = %v", err)
	}
	if ffs.SyncLies() == 0 {
		t.Fatal("no sync was lied about")
	}
	if got, ok := s.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

func TestOpenRecoversCrashDebris(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// A healthy entry, written by a previous clean process.
	pre, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pre.Put("good", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Crash debris: a dead writer's temp and a structurally torn entry
	// (shorter than header+checksum — a lying-fsync artifact).
	orphan := filepath.Join(dir, vfs.TmpPrefix+"999999999-x")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "00deadbeef00dead.e")
	if err := os.WriteFile(torn, []byte("ACST"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	io := s.IOCounters()
	if io.OrphansSwept != 1 {
		t.Errorf("OrphansSwept = %d, want 1", io.OrphansSwept)
	}
	if io.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", io.Quarantined)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("orphan temp survived Open: %v", err)
	}
	if _, err := os.Stat(torn); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("torn entry still live after Open: %v", err)
	}
	if _, err := os.Stat(strings.TrimSuffix(torn, ".e") + badExt); err != nil {
		t.Errorf("torn entry not quarantined: %v", err)
	}
	if got, ok := s.Get("good"); !ok || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("healthy entry lost in recovery: %q, %v", got, ok)
	}
	if errs := s.VerifyAll(); len(errs) != 0 {
		t.Fatalf("store dirty after recovery: %v", errs)
	}
}

func TestOpenLeavesLiveWriterTemps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Our own pid is alive: a concurrent writer in this process (or a
	// sibling sharing the directory) must not lose its in-flight temp.
	live := filepath.Join(dir, vfs.TempPattern())
	live = strings.ReplaceAll(live, "*", "inflight")
	if err := os.WriteFile(live, []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.IOCounters().OrphansSwept; got != 0 {
		t.Fatalf("swept %d live temps", got)
	}
	if _, err := os.Stat(live); err != nil {
		t.Fatalf("live writer's temp removed: %v", err)
	}
}
