// Package store is a persistent content-addressed result store: a
// directory of cache entries keyed by arbitrary strings, written
// atomically and verified exhaustively on the way back in. The
// hierarchical extractor uses it as the disk tier under its in-memory
// caches, so extraction results survive the process; identical keys
// computed by a later run (or a concurrent process sharing the
// directory) read the stored payload instead of recomputing.
//
// Guarantees:
//
//   - An entry is either fully present or absent, under any crash
//     point: writes are assembled in a pid-stamped temporary in the
//     same directory, fsynced, published with an atomic rename, and
//     the directory is fsynced so the rename itself survives a power
//     loss. Two processes racing on one key leave one winner and no
//     torn file; a kill -9 leaves at worst an orphaned temporary.
//   - Opening the store recovers from crashes: orphaned temporaries
//     whose writer is dead are swept, and structurally torn entries
//     (shorter than a header — only possible when an fsync lied) are
//     quarantined.
//   - A read can never return the wrong payload: the file carries a
//     magic number, a format version, the complete key and an FNV-64a
//     checksum over key and payload. Hash collisions in the file name,
//     stale schema versions, truncation and bit flips all fail
//     verification and degrade into a miss — the caller recomputes.
//   - A failed verification quarantines the entry (renames it to a
//     .bad file) so it is never consulted again; garbage collection
//     removes quarantined files first.
//   - The store is size-capped: when the directory grows past
//     Options.MaxBytes, the least-recently-used entries (by
//     modification time, refreshed on Get) are evicted until the
//     store fits again. A full disk (ENOSPC) triggers one immediate
//     GC and a retried publish before the Put is abandoned.
//
// Every operation is fail-open: I/O errors surface as misses (Get) or
// returned errors the caller may ignore (Put), and are distinguishable
// from plain misses through IOCounters. The store never panics on
// hostile directory contents.
package store

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ace/internal/vfs"
)

// DefaultMaxBytes is the size cap applied when Options.MaxBytes is 0.
const DefaultMaxBytes = 256 << 20 // 256 MiB

// formatVersion is the on-disk entry schema. Bump it when the header
// layout changes; old entries then fail verification, are quarantined
// and are lazily replaced by fresh computes.
const formatVersion = 1

// magic marks a store entry file.
var magic = [4]byte{'A', 'C', 'S', 'T'}

// headerSize is magic + version + keyLen + payloadLen.
const headerSize = 4 + 4 + 4 + 4

// checksumSize is the trailing FNV-64a over key+payload.
const checksumSize = 8

// entryExt is the extension of live entries; quarantined entries get
// badExt and in-flight writes vfs.TmpPrefix.
const (
	entryExt  = ".e"
	badExt    = ".bad"
	tmpPrefix = vfs.TmpPrefix
)

// Options configures a Store.
type Options struct {
	// MaxBytes caps the directory's total size: 0 selects
	// DefaultMaxBytes, negative disables the cap. Eviction is
	// least-recently-used by file modification time.
	MaxBytes int64

	// FS is the filesystem the store runs on; nil selects vfs.OS.
	// Tests substitute a vfs.FaultFS to exercise the failure paths.
	FS vfs.FS
}

// IOCounters exposes the store's fail-open bookkeeping: how often the
// disk, as opposed to a plain cache miss, let a caller down.
type IOCounters struct {
	// GetErrors counts reads that failed for I/O reasons — the entry
	// may exist but could not be read. Plain absent-file misses are
	// not counted.
	GetErrors int64

	// PutErrors counts writes abandoned on I/O errors (after the
	// ENOSPC retry, when applicable).
	PutErrors int64

	// ENOSPCRetries counts Puts that hit a full disk and retried
	// after an emergency GC (whether or not the retry succeeded).
	ENOSPCRetries int64

	// Quarantined counts entries retired for failing verification.
	Quarantined int64

	// OrphansSwept counts abandoned temporaries removed, at Open and
	// during GC.
	OrphansSwept int64
}

// Store is one cache directory. All methods are safe for concurrent
// use by multiple goroutines, and the on-disk format is safe for
// concurrent use by multiple processes (atomic rename publication;
// eviction races degrade into misses).
type Store struct {
	dir      string
	maxBytes int64
	fs       vfs.FS

	getErrors     atomic.Int64
	putErrors     atomic.Int64
	enospcRetries atomic.Int64
	quarantined   atomic.Int64
	orphansSwept  atomic.Int64

	mu    sync.Mutex
	bytes int64 // approximate; < 0 until first sized; recomputed on GC
	puts  int   // puts since the last GC consideration
}

// Open creates (if needed) and opens a store directory, then runs
// crash recovery over it: abandoned ".tmp-*" files whose writer is
// dead are removed, and entry files too short to hold a header are
// quarantined. After Open returns, every live entry is structurally
// whole and every temporary belongs to a live writer.
func Open(dir string, opt Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	fsys := opt.FS
	if fsys == nil {
		fsys = vfs.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	maxBytes := opt.MaxBytes
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	// The directory is not sized here: read-only openers (a warm
	// process) never pay for a full scan. The first Put sizes it
	// lazily so the cap can be enforced.
	s := &Store{dir: dir, maxBytes: maxBytes, fs: fsys, bytes: -1}
	s.recover()
	return s, nil
}

// recover is the crash-recovery sweep run by Open. Best-effort: a
// directory that cannot be listed degrades to an empty-looking store,
// never a failed Open.
func (s *Store) recover() {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	now := time.Now()
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		switch {
		case strings.HasPrefix(name, tmpPrefix):
			mtime := now
			if info, err := de.Info(); err == nil {
				mtime = info.ModTime()
			}
			if vfs.IsOrphanTemp(name, mtime, now) {
				if s.fs.Remove(filepath.Join(s.dir, name)) == nil {
					s.orphansSwept.Add(1)
				}
			}
		case strings.HasSuffix(name, entryExt):
			// A published entry shorter than its fixed framing cannot
			// verify and will never be read successfully; retire it now
			// so VerifyAll and Get agree the store is clean. (Possible
			// only when an fsync lied about durability before a crash.)
			info, err := de.Info()
			if err != nil {
				continue
			}
			if info.Size() < headerSize+checksumSize {
				s.quarantine(filepath.Join(s.dir, name))
			}
		}
	}
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// IOCounters returns a snapshot of the store's disk-error bookkeeping.
func (s *Store) IOCounters() IOCounters {
	return IOCounters{
		GetErrors:     s.getErrors.Load(),
		PutErrors:     s.putErrors.Load(),
		ENOSPCRetries: s.enospcRetries.Load(),
		Quarantined:   s.quarantined.Load(),
		OrphansSwept:  s.orphansSwept.Load(),
	}
}

// path maps a key to its entry file: 16 hex digits of the key's
// FNV-64a hash. Collisions are legal — verification against the full
// key stored inside the file turns them into misses, and the last
// writer owns the name.
func (s *Store) path(key string) string {
	var h [8]byte
	binary.BigEndian.PutUint64(h[:], fnv64a(key, ""))
	return filepath.Join(s.dir, hex.EncodeToString(h[:])+entryExt)
}

// Get returns the payload stored under key, refreshing the entry's
// LRU position. Any verification failure — wrong magic, wrong
// version, wrong key, bad checksum, truncation — quarantines the file
// and reports a miss. I/O errors also report a miss (the caller
// recomputes) but bump IOCounters.GetErrors.
func (s *Store) Get(key string) ([]byte, bool) {
	return s.GetBuf(key, nil)
}

// GetBuf is Get with a caller-owned read buffer: the entry file is
// read into *buf (grown when the file outgrows it, capacity retained
// across calls) and the returned payload sub-slices it — valid only
// until the buffer's next use. Callers that retain any part of the
// payload, or hand it to a decoder that sub-slices instead of copying,
// must use Get. A nil buf behaves exactly like Get.
func (s *Store) GetBuf(key string, buf *[]byte) ([]byte, bool) {
	p := s.path(key)
	var raw []byte
	var err error
	if buf == nil {
		raw, err = s.fs.ReadFile(p)
	} else {
		raw, err = readInto(s.fs, p, (*buf)[:0])
		if err == nil {
			*buf = raw
		}
	}
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.getErrors.Add(1)
		}
		return nil, false
	}
	payload, err := verify(raw, key)
	if err != nil {
		s.quarantine(p)
		return nil, false
	}
	// LRU touch; best-effort (the entry may have been evicted by a
	// concurrent process between the read and the touch).
	now := time.Now()
	_ = s.fs.Chtimes(p, now, now)
	return payload, true
}

// readInto reads the whole file at p into dst's spare capacity,
// reallocating only when the file is larger than any seen before.
func readInto(fsys vfs.FS, p string, dst []byte) ([]byte, error) {
	f, err := fsys.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if info, err := f.Stat(); err == nil {
		// +1 so a file of exactly the stated size still hits EOF without
		// an extra grow round.
		if need := int(info.Size()) + 1; need > cap(dst) {
			dst = make([]byte, 0, need)
		}
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := f.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// Has reports whether an entry file exists under key's name without
// reading or verifying it. It is the cheap "probably stored already"
// check used to skip redundant Puts; a corrupt entry reporting true
// here is quarantined by the next Get and re-Put after that.
func (s *Store) Has(key string) bool {
	_, err := s.fs.Stat(s.path(key))
	return err == nil
}

// enospcBackoff is how long Put waits after an emergency GC before
// retrying a publish that hit a full disk — long enough for the
// filesystem to reclaim the freed blocks.
var enospcBackoff = 50 * time.Millisecond

// Put stores payload under key, atomically and durably: the entry is
// assembled in a pid-stamped temporary, fsynced, published with a
// rename, and the directory is fsynced. Entries larger than half the
// size cap are silently dropped (they would immediately evict the
// rest of the store). A full disk triggers one emergency GC and a
// retried publish with a short backoff; all other I/O errors abandon
// the Put, returning the error and bumping IOCounters.PutErrors.
func (s *Store) Put(key string, payload []byte) error {
	size := int64(headerSize + len(key) + len(payload) + checksumSize)
	if s.maxBytes > 0 && size > s.maxBytes/2 {
		return nil
	}
	err := s.putOnce(key, payload)
	if err != nil && vfs.IsNoSpace(err) {
		s.enospcRetries.Add(1)
		s.GC()
		time.Sleep(enospcBackoff)
		err = s.putOnce(key, payload)
	}
	if err != nil {
		s.putErrors.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	if s.bytes < 0 {
		// First write through this handle: size the directory once (the
		// scan already includes the entry just published).
		s.bytes = s.scanBytes()
	} else {
		s.bytes += size
	}
	s.puts++
	runGC := s.maxBytes > 0 && s.bytes > s.maxBytes
	s.mu.Unlock()
	if runGC {
		s.GC()
	}
	return nil
}

// putOnce performs one atomic publish attempt.
func (s *Store) putOnce(key string, payload []byte) error {
	af, err := vfs.NewAtomicFile(s.fs, s.path(key))
	if err != nil {
		return err
	}
	defer af.Abort() // no-op after Commit
	var hdr [headerSize]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint32(hdr[4:], formatVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(payload)))
	var sum [checksumSize]byte
	binary.LittleEndian.PutUint64(sum[:], fnv64a(key, string(payload)))
	for _, b := range [][]byte{hdr[:], []byte(key), payload, sum[:]} {
		if _, err := af.Write(b); err != nil {
			return err
		}
	}
	return af.Commit()
}

// CorruptError reports a store entry that failed verification: bad
// magic, a stale format version, truncation, a key or checksum
// mismatch. Get degrades such entries into misses, so the type only
// reaches callers through VerifyAll — the explicit integrity scan —
// where the CLI taxonomy classifies it as data corruption rather than
// a generic failure.
type CorruptError struct {
	Path   string // entry file, when known
	Reason string
}

func (e *CorruptError) Error() string {
	if e.Path == "" {
		return "store: " + e.Reason
	}
	return "store: " + e.Path + ": " + e.Reason
}

func corruptf(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// verify checks a raw entry file against the key it should hold and
// returns the payload. It is pure and never panics, whatever the
// bytes; failures are typed *CorruptError.
func verify(raw []byte, key string) ([]byte, error) {
	if len(raw) < headerSize+checksumSize {
		return nil, corruptf("entry truncated")
	}
	if string(raw[:4]) != string(magic[:]) {
		return nil, corruptf("bad magic")
	}
	if v := binary.LittleEndian.Uint32(raw[4:]); v != formatVersion {
		return nil, corruptf("version %d, want %d", v, formatVersion)
	}
	keyLen := int64(binary.LittleEndian.Uint32(raw[8:]))
	payLen := int64(binary.LittleEndian.Uint32(raw[12:]))
	if int64(len(raw)) != headerSize+keyLen+payLen+checksumSize {
		return nil, corruptf("length mismatch")
	}
	gotKey := raw[headerSize : headerSize+keyLen]
	if string(gotKey) != key {
		return nil, corruptf("key mismatch")
	}
	payload := raw[headerSize+keyLen : headerSize+keyLen+payLen]
	want := binary.LittleEndian.Uint64(raw[len(raw)-checksumSize:])
	if fnv64a(key, string(payload)) != want {
		return nil, corruptf("checksum mismatch")
	}
	return payload, nil
}

// VerifyAll reads and verifies every live entry in the directory:
// structural header checks, the embedded key's checksum, and the
// binding between the entry's file name and its key. Damaged entries
// are quarantined (so later Gets never consult them) and reported as
// *CorruptError values; unreadable files report their I/O error. A
// clean store returns nil.
func (s *Store) VerifyAll() []error {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return []error{fmt.Errorf("store: %w", err)}
	}
	var errs []error
	for _, de := range ents {
		if !strings.HasSuffix(de.Name(), entryExt) {
			continue
		}
		p := filepath.Join(s.dir, de.Name())
		raw, err := s.fs.ReadFile(p)
		if err != nil {
			errs = append(errs, fmt.Errorf("store: %s: %w", p, err))
			continue
		}
		if err := verifyEntryFile(raw, de.Name()); err != nil {
			var ce *CorruptError
			if errors.As(err, &ce) {
				ce.Path = p
			}
			errs = append(errs, err)
			s.quarantine(p)
		}
	}
	return errs
}

// verifyEntryFile verifies a raw entry against its own embedded key,
// then checks the file is named by that key's hash — a mis-filed entry
// would otherwise verify here yet never be found by Get.
func verifyEntryFile(raw []byte, name string) error {
	if len(raw) < headerSize+checksumSize {
		return corruptf("entry truncated")
	}
	keyLen := int64(binary.LittleEndian.Uint32(raw[8:]))
	if keyLen < 0 || headerSize+keyLen > int64(len(raw)) {
		return corruptf("key length out of range")
	}
	key := string(raw[headerSize : headerSize+keyLen])
	if _, err := verify(raw, key); err != nil {
		return err
	}
	var h [8]byte
	binary.BigEndian.PutUint64(h[:], fnv64a(key, ""))
	if want := hex.EncodeToString(h[:]) + entryExt; name != want {
		return corruptf("entry filed under %s, key hashes to %s", name, want)
	}
	return nil
}

// Quarantine retires the entry stored under key. Callers use it when
// an entry passed verification but its payload failed to decode (a
// payload-schema change, or corruption introduced before the checksum
// was computed) — leaving it live would re-read it every run.
func (s *Store) Quarantine(key string) { s.quarantine(s.path(key)) }

// quarantine renames a failed entry to its .bad twin so it is never
// consulted again (the entry name is then free for a fresh Put). If
// the rename fails the file is removed outright.
func (s *Store) quarantine(p string) {
	s.quarantined.Add(1)
	if err := s.fs.Rename(p, strings.TrimSuffix(p, entryExt)+badExt); err != nil {
		_ = s.fs.Remove(p)
	}
}

// Stats reports the number of live entries and the approximate size
// of the whole directory (live, quarantined and in-flight files).
func (s *Store) Stats() (entries int, bytes int64) {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return 0, 0
	}
	for _, de := range ents {
		info, err := de.Info()
		if err != nil {
			continue
		}
		bytes += info.Size()
		if strings.HasSuffix(de.Name(), entryExt) {
			entries++
		}
	}
	return entries, bytes
}

// GC removes quarantined files and abandoned temporaries, then evicts
// live entries least-recently-used first until the directory fits in
// the size cap again. Safe to call at any time and from any process
// sharing the directory; a concurrent reader losing its entry sees a
// plain miss.
func (s *Store) GC() {
	s.mu.Lock()
	defer s.mu.Unlock()
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	var live []entry
	var total int64
	now := time.Now()
	for _, de := range ents {
		info, err := de.Info()
		if err != nil {
			continue
		}
		p := filepath.Join(s.dir, de.Name())
		switch {
		case strings.HasSuffix(de.Name(), badExt):
			_ = s.fs.Remove(p)
		case strings.HasPrefix(de.Name(), tmpPrefix):
			// Pid-stamped temps are orphans as soon as their writer
			// dies; unparseable ones only after an age grace period.
			if vfs.IsOrphanTemp(de.Name(), info.ModTime(), now) {
				if s.fs.Remove(p) == nil {
					s.orphansSwept.Add(1)
				} else {
					total += info.Size()
				}
			} else {
				total += info.Size()
			}
		case strings.HasSuffix(de.Name(), entryExt):
			live = append(live, entry{p, info.Size(), info.ModTime()})
			total += info.Size()
		default:
			total += info.Size()
		}
	}
	if s.maxBytes > 0 && total > s.maxBytes {
		sort.Slice(live, func(i, j int) bool { return live[i].mtime.Before(live[j].mtime) })
		// Evict down to 7/8 of the cap so steady-state Puts don't GC
		// on every call.
		target := s.maxBytes - s.maxBytes/8
		for _, e := range live {
			if total <= target {
				break
			}
			if s.fs.Remove(e.path) == nil {
				total -= e.size
			}
		}
	}
	s.bytes = total
	s.puts = 0
}

// scanBytes sums the directory for the initial size estimate.
func (s *Store) scanBytes() int64 {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, de := range ents {
		if info, err := de.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// fnv64a hashes two strings as one stream (key then payload), so the
// checksum binds the payload to its key.
func fnv64a(a, b string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= prime
	}
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime
	}
	return h
}
