package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, opt Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := open(t, Options{})
	keys := []string{"", "k", strings.Repeat("long-key-", 100), "bin\x00\xff key"}
	for i, k := range keys {
		payload := bytes.Repeat([]byte{byte(i), 0xA5}, 100+i)
		if _, ok := s.Get(k); ok {
			t.Fatalf("hit before put: %q", k)
		}
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		got, ok := s.Get(k)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("round trip failed for %q", k)
		}
		if !s.Has(k) {
			t.Fatalf("Has false after Put: %q", k)
		}
	}
	if n, b := s.Stats(); n != len(keys) || b == 0 {
		t.Fatalf("stats: %d entries %d bytes", n, b)
	}
}

func TestOverwrite(t *testing.T) {
	s := open(t, Options{})
	if err := s.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("new payload")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k")
	if !ok || string(got) != "new payload" {
		t.Fatalf("got %q %v", got, ok)
	}
}

// TestHashCollision simulates two keys sharing one file name (a
// 64-bit hash collision): whichever entry is on disk, the other key
// must miss — full-key verification, never a wrong payload. The
// mismatch is benign, so the entry must NOT be quarantined.
func TestHashCollision(t *testing.T) {
	s := open(t, Options{})
	if err := s.Put("keyA", []byte("payloadA")); err != nil {
		t.Fatal(err)
	}
	// Force the collision: copy keyA's file onto keyB's name.
	raw, err := os.ReadFile(s.path("keyA"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("keyB"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("keyB"); ok {
		t.Fatal("keyB returned keyA's payload")
	}
	if got, ok := s.Get("keyA"); !ok || string(got) != "payloadA" {
		t.Fatalf("keyA lost: %q %v", got, ok)
	}
}

// TestCorruptionSweep damages a stored entry every way the robustness
// contract names — zero-length, truncated, bit-flipped (header, key,
// payload, checksum), wrong version, wrong magic, short garbage — and
// asserts each one reads back as a miss, is quarantined, and a fresh
// Put + Get recovers. Nothing may panic and nothing may return the
// wrong payload.
func TestCorruptionSweep(t *testing.T) {
	const key = "corruption-victim"
	payload := bytes.Repeat([]byte("payload!"), 64)

	good := func(t *testing.T) (*Store, string) {
		s := open(t, Options{})
		if err := s.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		return s, s.path(key)
	}
	raw := func(t *testing.T, p string) []byte {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	cases := []struct {
		name    string
		corrupt func(t *testing.T, p string)
	}{
		{"zero-length", func(t *testing.T, p string) {
			if err := os.WriteFile(p, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated-header", func(t *testing.T, p string) {
			b := raw(t, p)
			if err := os.WriteFile(p, b[:7], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated-payload", func(t *testing.T, p string) {
			b := raw(t, p)
			if err := os.WriteFile(p, b[:len(b)-20], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flip-header", func(t *testing.T, p string) {
			b := raw(t, p)
			b[9] ^= 0x40 // key length
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flip-key", func(t *testing.T, p string) {
			b := raw(t, p)
			b[headerSize+2] ^= 0x01
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flip-payload", func(t *testing.T, p string) {
			b := raw(t, p)
			b[headerSize+len(key)+10] ^= 0x80
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flip-checksum", func(t *testing.T, p string) {
			b := raw(t, p)
			b[len(b)-1] ^= 0x01
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong-version", func(t *testing.T, p string) {
			b := raw(t, p)
			binary.LittleEndian.PutUint32(b[4:], formatVersion+7)
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong-magic", func(t *testing.T, p string) {
			b := raw(t, p)
			copy(b, "NOPE")
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"short-garbage", func(t *testing.T, p string) {
			if err := os.WriteFile(p, []byte{1, 2, 3}, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, p := good(t)
			tc.corrupt(t, p)
			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupt entry returned payload %q", got)
			}
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry still live: %v", err)
			}
			if bad, _ := filepath.Glob(filepath.Join(s.Dir(), "*"+badExt)); len(bad) != 1 {
				// quarantine falls back to remove; either way the entry
				// must be gone, but the rename path should normally win.
				t.Logf("quarantine produced %d .bad files", len(bad))
			}
			// Recovery: recompute, store, read back.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
				t.Fatal("recovery Put/Get failed")
			}
		})
	}
}

// TestGCEvictsLRU fills a tiny store past its cap and checks the
// least-recently-touched entries go first while recently-read ones
// survive.
func TestGCEvictsLRU(t *testing.T) {
	payload := bytes.Repeat([]byte{0xEE}, 2048)
	s := open(t, Options{MaxBytes: 16 * 1024})
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	// Refresh key-0 so key-1 becomes the eviction candidate. The LRU
	// clock is file mtime; nudge it back for the untouched entries so
	// the ordering is unambiguous on coarse-mtime filesystems.
	for i := 1; i < 4; i++ {
		p := s.path(fmt.Sprintf("key-%d", i))
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		old := info.ModTime().Add(-time.Hour + time.Duration(i)*time.Minute)
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get("key-0"); !ok {
		t.Fatal("key-0 missing before GC")
	}
	// Push past the cap; the Put-triggered GC should evict the stale
	// keys, oldest first, and keep the fresh ones.
	for i := 4; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	s.GC()
	if _, bytes := s.Stats(); bytes > 16*1024 {
		t.Fatalf("store above cap after GC: %d", bytes)
	}
	if _, ok := s.Get("key-1"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := s.Get("key-7"); !ok {
		t.Fatal("newest entry was evicted")
	}
}

// TestGCRemovesQuarantined: .bad files disappear on the next GC.
func TestGCRemovesQuarantined(t *testing.T) {
	s := open(t, Options{})
	if err := s.Put("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	p := s.path("k")
	if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("garbage hit")
	}
	if bad, _ := filepath.Glob(filepath.Join(s.Dir(), "*"+badExt)); len(bad) != 1 {
		t.Fatalf("expected one quarantined file, got %d", len(bad))
	}
	s.GC()
	if bad, _ := filepath.Glob(filepath.Join(s.Dir(), "*"+badExt)); len(bad) != 0 {
		t.Fatalf("quarantined files survived GC: %d", len(bad))
	}
}

// TestOversizedEntrySkipped: a payload bigger than half the cap is
// dropped rather than stored (it would evict everything else).
func TestOversizedEntrySkipped(t *testing.T) {
	s := open(t, Options{MaxBytes: 4096})
	if err := s.Put("big", bytes.Repeat([]byte{1}, 4000)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("big"); ok {
		t.Fatal("oversized entry was stored")
	}
}

// TestConcurrentAccess hammers one store from many goroutines mixing
// Put, Get, Has and GC; run under -race this is the in-process half
// of the shared-cache contract (the cross-process half lives in the
// cmd smoke test). Every Get must return either a miss or the exact
// payload for its key.
func TestConcurrentAccess(t *testing.T) {
	s := open(t, Options{MaxBytes: 1 << 20})
	payloadFor := func(k int) []byte {
		return bytes.Repeat([]byte{byte(k), byte(k >> 8)}, 128)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g*7 + i) % 32
				key := fmt.Sprintf("key-%d", k)
				switch i % 4 {
				case 0:
					if err := s.Put(key, payloadFor(k)); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				case 3:
					if i%40 == 3 {
						s.GC()
					}
					s.Has(key)
				default:
					if got, ok := s.Get(key); ok && !bytes.Equal(got, payloadFor(k)) {
						t.Errorf("key %s: wrong payload", key)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestOpenBadDir: opening a path that cannot be a directory fails
// cleanly.
func TestOpenBadDir(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Fatal("empty dir accepted")
	}
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(f, "sub"), Options{}); err == nil {
		t.Fatal("dir under a regular file accepted")
	}
}

// TestVerifyAll: a clean store verifies silently; every class of
// damage is reported as a typed *CorruptError and quarantined so
// later Gets never consult the entry again.
func TestVerifyAll(t *testing.T) {
	s := open(t, Options{})
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), bytes.Repeat([]byte{byte(i)}, 200)); err != nil {
			t.Fatal(err)
		}
	}
	if errs := s.VerifyAll(); len(errs) != 0 {
		t.Fatalf("clean store reported %v", errs)
	}

	// Flip a payload byte in one entry, truncate a second, and misfile
	// a third under a name its key does not hash to.
	flip := s.path("key-0")
	b, err := os.ReadFile(flip)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-12] ^= 0x01
	if err := os.WriteFile(flip, b, 0o644); err != nil {
		t.Fatal(err)
	}
	trunc := s.path("key-1")
	if err := os.Truncate(trunc, 9); err != nil {
		t.Fatal(err)
	}
	misfiled := filepath.Join(s.Dir(), strings.Repeat("ab", 8)+entryExt)
	if err := os.Rename(s.path("key-2"), misfiled); err != nil {
		t.Fatal(err)
	}

	errs := s.VerifyAll()
	if len(errs) != 3 {
		t.Fatalf("got %d errors, want 3: %v", len(errs), errs)
	}
	for _, err := range errs {
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("error %v is not a *CorruptError", err)
		}
		if ce.Path == "" {
			t.Fatalf("corrupt error carries no path: %v", ce)
		}
	}
	for _, p := range []string{flip, trunc, misfiled} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("damaged entry %s not quarantined", p)
		}
	}
	// The quarantined entries are misses; the untouched one still hits.
	if _, ok := s.Get("key-0"); ok {
		t.Fatal("corrupt entry survived quarantine")
	}
	if _, ok := s.Get("key-3"); !ok {
		t.Fatal("healthy entry lost")
	}
	if errs := s.VerifyAll(); len(errs) != 0 {
		t.Fatalf("second sweep still dirty: %v", errs)
	}
}

// TestConcurrentCorruption drives readers against a corruptor: several
// goroutines loop Get/GetBuf on an entry while another repeatedly
// rewrites the file with damaged bytes and restores it. Every read
// must return either the exact original payload or a miss — never
// damaged bytes and never a panic (the -race CI run also proves the
// quarantine path is data-race-free against readers).
func TestConcurrentCorruption(t *testing.T) {
	s := open(t, Options{})
	const key = "contested"
	payload := bytes.Repeat([]byte("good-bytes."), 97)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	p := s.path(key)
	good, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var buf []byte
			for {
				select {
				case <-stop:
					return
				default:
				}
				var got []byte
				var ok bool
				if r%2 == 0 {
					got, ok = s.Get(key)
				} else {
					got, ok = s.GetBuf(key, &buf)
				}
				if ok && !bytes.Equal(got, payload) {
					t.Errorf("reader %d observed damaged payload", r)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 300; i++ {
			bad := append([]byte(nil), good...)
			switch i % 3 {
			case 0: // payload bit flip
				bad[headerSize+len(key)+i%len(payload)] ^= 0xFF
				_ = os.WriteFile(p, bad, 0o644)
			case 1: // truncation
				_ = os.WriteFile(p, bad[:headerSize+i%32], 0o644)
			case 2: // garbage
				_ = os.WriteFile(p, bytes.Repeat([]byte{byte(i)}, 64), 0o644)
			}
			// Restore: the readers quarantine the damage into a miss, so
			// re-publish the entry the way a recomputing caller would.
			if err := s.Put(key, payload); err != nil {
				t.Errorf("re-put: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatal("entry unreadable after the corruption storm")
	}
}
