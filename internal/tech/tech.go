// Package tech defines the Mead–Conway NMOS technology the extractor
// understands: the CIF layer set, which layers conduct, how contact
// cuts and buried contacts join layers, and the transistor formation
// rule (ACE §3: "An overlap between diffusion and poly accompanied by
// the absence of buried results in a potential transistor. The
// presence of implant determines the type of transistor.").
package tech

import "fmt"

// Layer identifies one NMOS mask layer.
type Layer int8

// The Mead–Conway NMOS layer set, in the order the scanline back end
// traverses them.
const (
	Diff    Layer = iota // ND: diffusion
	Poly                 // NP: polysilicon
	Metal                // NM: metal
	Cut                  // NC: contact cut (metal to poly or diffusion)
	Buried               // NB: buried contact (poly to diffusion)
	Implant              // NI: depletion-mode implant
	Glass                // NG: overglass openings
	numLayers
)

// NumLayers is the number of mask layers.
const NumLayers = int(numLayers)

// ConductingLayers are the layers that carry electrical signals and
// therefore participate in net formation. Non-conducting layers
// (implant, cut, buried, glass) "cannot transfer any information to
// the external environment" (HEXT §3) but modulate devices and
// inter-layer connections.
var ConductingLayers = []Layer{Diff, Poly, Metal}

// InteractingLayers are the four layers whose overlaps form devices
// (ACE §3 step 2.c).
var InteractingLayers = []Layer{Diff, Poly, Buried, Implant}

var cifNames = [NumLayers]string{"ND", "NP", "NM", "NC", "NB", "NI", "NG"}
var longNames = [NumLayers]string{
	"diffusion", "poly", "metal", "cut", "buried", "implant", "glass",
}

// CIFName returns the two-letter CIF layer name (e.g. "ND").
func (l Layer) CIFName() string {
	if l < 0 || int(l) >= NumLayers {
		return fmt.Sprintf("L%d?", int(l))
	}
	return cifNames[l]
}

// String returns the human-readable layer name.
func (l Layer) String() string {
	if l < 0 || int(l) >= NumLayers {
		return fmt.Sprintf("layer(%d)", int(l))
	}
	return longNames[l]
}

// Conducting reports whether the layer carries signals.
func (l Layer) Conducting() bool { return l == Diff || l == Poly || l == Metal }

// LayerByCIFName maps a CIF layer name to a Layer. Both the canonical
// NMOS names (ND, NP, …) and the single-letter aliases some tools
// emit (D, P, M, C, B, I, G) are accepted.
func LayerByCIFName(name string) (Layer, bool) {
	switch name {
	case "ND", "D", "NX": // NX appears in the paper's wirelist channel geometry
		return Diff, true
	case "NP", "P":
		return Poly, true
	case "NM", "M":
		return Metal, true
	case "NC", "C":
		return Cut, true
	case "NB", "B":
		return Buried, true
	case "NI", "I":
		return Implant, true
	case "NG", "G":
		return Glass, true
	}
	return 0, false
}

// LayerByCIFNameBytes is LayerByCIFName for a byte slice. The switch
// compiles to allocation-free comparisons, which keeps the CIF
// parser's L-command path off the heap (layer switches occur roughly
// once per geometry run in real files).
func LayerByCIFNameBytes(name []byte) (Layer, bool) {
	// switch string(b) with constant cases is the compiler's
	// recognised no-allocation conversion; routing through
	// LayerByCIFName would materialise the string argument.
	switch string(name) {
	case "ND", "D", "NX":
		return Diff, true
	case "NP", "P":
		return Poly, true
	case "NM", "M":
		return Metal, true
	case "NC", "C":
		return Cut, true
	case "NB", "B":
		return Buried, true
	case "NI", "I":
		return Implant, true
	case "NG", "G":
		return Glass, true
	}
	return 0, false
}

// DeviceType classifies an extracted device.
type DeviceType int8

const (
	// Enhancement is a normal NMOS enhancement-mode transistor
	// (diffusion ∧ poly, no buried, no implant).
	Enhancement DeviceType = iota
	// Depletion is a depletion-mode transistor (implant present over
	// the channel) — the NMOS load device.
	Depletion
	// Capacitor is a MOS capacitor: a gate region whose single
	// source/drain net is tied to its gate net.
	Capacitor
)

func (d DeviceType) String() string {
	switch d {
	case Enhancement:
		return "nEnh"
	case Depletion:
		return "nDep"
	case Capacitor:
		return "nCap"
	}
	return fmt.Sprintf("device(%d)", int8(d))
}

// Tech carries the numeric parameters of the process.
type Tech struct {
	// Lambda is the half design-rule unit in centimicrons. The
	// Mead–Conway NMOS default is 200 (λ = 2 µm).
	Lambda int64

	// MinRatio is the minimum pull-up/pull-down length ratio the
	// static checker enforces for restoring logic (Mead–Conway use 4:1
	// for inverters driven by pass transistors, 8:1 otherwise; we
	// check the conservative 4:1 by default).
	MinRatio float64

	// AreaCapPerLambda2 gives per-layer capacitance in attofarads per
	// λ² for the R/C post-processor.
	AreaCapPerLambda2 [NumLayers]float64

	// SheetResistance gives per-layer resistance in milliohms per
	// square for the R/C post-processor.
	SheetResistance [NumLayers]float64
}

// Default returns the standard Mead–Conway NMOS parameter set used
// throughout the repository.
func Default() *Tech {
	t := &Tech{Lambda: 200, MinRatio: 4.0}
	// Classic Mead–Conway table 2.1-ish values (aF/λ² at λ=2µm and
	// mΩ/sq): metal 0.3 fF/µm² etc. The absolute values only matter
	// to the rcx post-processor's relative ordering.
	t.AreaCapPerLambda2[Metal] = 120
	t.AreaCapPerLambda2[Poly] = 160
	t.AreaCapPerLambda2[Diff] = 400
	t.SheetResistance[Metal] = 30   // 0.03 Ω/sq
	t.SheetResistance[Poly] = 30000 // 30 Ω/sq
	t.SheetResistance[Diff] = 10000 // 10 Ω/sq
	return t
}
