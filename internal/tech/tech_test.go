package tech

import "testing"

func TestLayerNames(t *testing.T) {
	for l := Layer(0); int(l) < NumLayers; l++ {
		if l.CIFName() == "" || l.String() == "" {
			t.Fatalf("layer %d has empty name", l)
		}
		// Round trip through the CIF name.
		got, ok := LayerByCIFName(l.CIFName())
		if !ok || got != l {
			t.Fatalf("round trip %s: %v %v", l.CIFName(), got, ok)
		}
	}
	if Layer(99).CIFName() == "" || Layer(99).String() == "" {
		t.Fatal("out-of-range layers must still format")
	}
}

func TestLayerAliases(t *testing.T) {
	cases := map[string]Layer{
		"ND": Diff, "D": Diff, "NX": Diff,
		"NP": Poly, "P": Poly,
		"NM": Metal, "M": Metal,
		"NC": Cut, "C": Cut,
		"NB": Buried, "B": Buried,
		"NI": Implant, "I": Implant,
		"NG": Glass, "G": Glass,
	}
	for name, want := range cases {
		got, ok := LayerByCIFName(name)
		if !ok || got != want {
			t.Errorf("LayerByCIFName(%q) = %v %v, want %v", name, got, ok, want)
		}
	}
	if _, ok := LayerByCIFName("ZZ"); ok {
		t.Error("bogus layer accepted")
	}
}

func TestConducting(t *testing.T) {
	want := map[Layer]bool{
		Diff: true, Poly: true, Metal: true,
		Cut: false, Buried: false, Implant: false, Glass: false,
	}
	for l, w := range want {
		if l.Conducting() != w {
			t.Errorf("%v.Conducting() = %v", l, l.Conducting())
		}
	}
	if len(ConductingLayers) != 3 || len(InteractingLayers) != 4 {
		t.Fatal("layer groups wrong")
	}
}

func TestDeviceTypeString(t *testing.T) {
	if Enhancement.String() != "nEnh" || Depletion.String() != "nDep" || Capacitor.String() != "nCap" {
		t.Fatal("device type names")
	}
	if DeviceType(9).String() == "" {
		t.Fatal("out-of-range device type must format")
	}
}

func TestDefault(t *testing.T) {
	tc := Default()
	if tc.Lambda != 200 || tc.MinRatio != 4.0 {
		t.Fatalf("defaults %+v", tc)
	}
	for _, l := range ConductingLayers {
		if tc.AreaCapPerLambda2[l] <= 0 || tc.SheetResistance[l] <= 0 {
			t.Fatalf("missing parasitics for %v", l)
		}
	}
	// Poly must be more resistive than metal; diffusion more capacitive
	// than metal — the orderings rcx depends on.
	if tc.SheetResistance[Poly] <= tc.SheetResistance[Metal] {
		t.Fatal("poly should be more resistive than metal")
	}
	if tc.AreaCapPerLambda2[Diff] <= tc.AreaCapPerLambda2[Metal] {
		t.Fatal("diffusion should be more capacitive than metal")
	}
}
