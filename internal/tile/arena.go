package tile

import (
	"sync"

	"ace/internal/frontend"
)

// Arena pools the per-iterator decode scratch — the row arena, the
// spanning-box list and the payload byte buffer — so a long-lived
// caller (extract.Engine, the hext daemon loop) re-reading the same
// file stops allocating per read. Attach one to a Reader with
// SetArena; every iterator the Reader opens then draws its scratch
// here and returns it when it exhausts cleanly (failed iterators drop
// theirs — their arenas may be referenced by the error path).
//
// Safe for concurrent use; a nil *Arena degrades to per-iterator
// allocation.
type Arena struct {
	mu   sync.Mutex
	sets []iterScratch
}

type iterScratch struct {
	arena []frontend.Box
	span  []frontend.Box
	buf   []byte
}

// NewArena returns an empty Arena.
func NewArena() *Arena { return &Arena{} }

func (a *Arena) get() iterScratch {
	if a == nil {
		return iterScratch{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.sets); n > 0 {
		s := a.sets[n-1]
		a.sets[n-1] = iterScratch{}
		a.sets = a.sets[:n-1]
		return iterScratch{arena: s.arena[:0], span: s.span[:0], buf: s.buf[:0]}
	}
	return iterScratch{}
}

func (a *Arena) put(s iterScratch) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.sets = append(a.sets, s)
	a.mu.Unlock()
}

// SetArena attaches a scratch pool to the Reader; subsequent iterators
// use it. Callers sharing one Reader across multiple pools must pick
// one — the field is not synchronised against concurrent SetArena.
func (r *Reader) SetArena(a *Arena) { r.pool = a }
