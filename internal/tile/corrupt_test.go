package tile

import (
	"bytes"
	"errors"
	"testing"

	"ace/internal/frontend"
)

// fullRead opens raw and exercises every read surface: the index
// parse, a whole-chip drain, a banded read, a window read and a top
// probe. It returns the first error encountered. Recovered panics fail
// the test: damage must surface as typed errors, never a crash.
func fullRead(t *testing.T, raw []byte) (err error) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("panic on corrupt input: %v", p)
		}
	}()
	r, err := NewReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return err
	}
	for _, it := range append(r.Sources([]int64{0}), r.ReadBand(WholeChip())) {
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
	}
	if r.NumBoxes() > 0 {
		var cache RowTopsCache
		if _, err := r.TopAt(r.NumBoxes()-1, &cache); err != nil {
			return err
		}
	}
	return nil
}

// TestCorruptionSweep flips a bit in every byte of a packed file and
// asserts the damage is always detected as a *CorruptError — the
// format's checksums and cross-checks leave no unprotected region
// (header, tile payloads, footer index, labels, trailer).
func TestCorruptionSweep(t *testing.T) {
	boxes := genBoxes(42, 300)
	labels := []frontend.Label{{Name: "clk", At: bboxOf(boxes).Center()}}
	raw := pack(t, boxes, labels, 4, 4)
	if err := fullRead(t, raw); err != nil {
		t.Fatalf("pristine file: %v", err)
	}
	for i := range raw {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), raw...)
			mut[i] ^= bit
			err := fullRead(t, mut)
			if err == nil {
				t.Fatalf("flip of bit %#x at byte %d/%d undetected", bit, i, len(raw))
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("flip at byte %d: error %v is not a *CorruptError", i, err)
			}
		}
	}
}

// TestTruncationSweep cuts the file at every length and asserts a
// typed error, never a panic and never silent partial output.
func TestTruncationSweep(t *testing.T) {
	boxes := genBoxes(43, 120)
	raw := pack(t, boxes, nil, 3, 3)
	for n := 0; n < len(raw); n++ {
		err := fullRead(t, raw[:n])
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes undetected", n, len(raw))
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation to %d: error %v is not a *CorruptError", n, err)
		}
	}
}

// TestExtensionSweep appends garbage after the trailer; the reader
// keys its trailer off the file end, so trailing junk must be caught.
func TestExtensionSweep(t *testing.T) {
	boxes := genBoxes(44, 60)
	raw := pack(t, boxes, nil, 2, 2)
	for _, extra := range []int{1, 7, trailerSize, 4096} {
		mut := append(append([]byte(nil), raw...), bytes.Repeat([]byte{0xAB}, extra)...)
		if err := fullRead(t, mut); err == nil {
			t.Fatalf("%d appended bytes undetected", extra)
		}
	}
}

// TestEmptyAndTinyInputs feeds pathological sizes straight to the
// reader.
func TestEmptyAndTinyInputs(t *testing.T) {
	for _, raw := range [][]byte{nil, {0}, []byte("ACTB"), bytes.Repeat([]byte{0}, headerSize+trailerSize)} {
		if err := fullRead(t, raw); err == nil {
			t.Fatalf("%d-byte input accepted", len(raw))
		}
	}
}
