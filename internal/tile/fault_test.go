package tile

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ace/internal/vfs"
)

// TestOpenFSFaultMatrix: read errors at every stage of opening and
// iterating a tile file must surface as returned errors — never a
// panic and never silently wrong boxes.
func TestOpenFSFaultMatrix(t *testing.T) {
	boxes := genBoxes(7, 4000)
	raw := pack(t, boxes, nil, 8, 8)
	path := filepath.Join(t.TempDir(), "chip.actb")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	t.Run("open-fails", func(t *testing.T) {
		ffs := vfs.NewFault(vfs.OS)
		ffs.FailOps(vfs.OpOpen)
		ffs.FailOnce(1, vfs.ErrInjected)
		if _, err := OpenFS(ffs, path); !errors.Is(err, vfs.ErrInjected) {
			t.Fatalf("OpenFS = %v, want injected", err)
		}
	})

	t.Run("index-read-fails", func(t *testing.T) {
		ffs := vfs.NewFault(vfs.OS)
		ffs.FailOps(vfs.OpReadAt)
		ffs.FailFrom(1, vfs.ErrInjected)
		r, err := OpenFS(ffs, path)
		if err == nil {
			r.Close()
			t.Fatal("OpenFS parsed an index with every read failing")
		}
	})

	t.Run("payload-read-fails-midway", func(t *testing.T) {
		ffs := vfs.NewFault(vfs.OS)
		r, err := OpenFS(ffs, path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		// Index is parsed; now every further positioned read fails. The
		// band iterator must stop with the error, not fabricate boxes.
		ffs.FailOps(vfs.OpReadAt)
		ffs.FailFrom(1, vfs.ErrInjected)
		it := r.ReadBand(WholeChip())
		n := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		// Unreadable payloads surface through the reader's typed error
		// (the CLI taxonomy maps it to ExitCorrupt — a primary input
		// that cannot be read is not recomputable, unlike a cache).
		var ce *CorruptError
		if err := it.Err(); !errors.As(err, &ce) {
			t.Fatalf("iterator error = %v after %d boxes, want *CorruptError", err, n)
		}
	})

	t.Run("clean-read-matches", func(t *testing.T) {
		ffs := vfs.NewFault(vfs.OS)
		r, err := OpenFS(ffs, path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		got := drainIter(t, r.ReadBand(WholeChip()))
		if int64(len(got)) != r.NumBoxes() {
			t.Fatalf("decoded %d boxes, index records %d", len(got), r.NumBoxes())
		}
	})
}
