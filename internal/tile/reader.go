package tile

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"ace/internal/frontend"
	"ace/internal/geom"
	"ace/internal/scan"
	"ace/internal/tech"
	"ace/internal/vfs"
)

// Reader serves windowed and banded reads from a packed tile file.
// Only the footer index lives in memory (52 bytes per tile plus the
// labels); tile payloads are fetched with positioned reads as the
// iterators need them and decoded one tile at a time into reusable
// arenas. ReadAt is safe for concurrent use, so band workers share one
// Reader and pull their tile ranges in parallel.
//
// Every structural read is verified: the header magic and version, the
// footer checksum, per-tile payload checksums, and index consistency
// (offsets inside the payload region, counts summing to the recorded
// box total). Damage surfaces as *CorruptError, never a panic.
type Reader struct {
	r      io.ReaderAt
	closer io.Closer
	size   int64

	grid   Grid
	nBoxes int64
	// entries is row-major, rows top-down: entries[r*Cols+c].
	entries []tileEntry
	labels  []frontend.Label
	// rowCum[r] is the number of boxes in rows [0, r): prefix sums over
	// the index, so top-rank queries can find their row in O(log rows).
	rowCum []int64

	bytesRead    atomic.Int64
	tilesDecoded atomic.Int64

	pool *Arena // iterator scratch pool; nil means per-iterator allocation
}

// Counters is a snapshot of a Reader's I/O effort: how many payload,
// footer and trailer bytes were fetched and how many tiles were
// decoded. Windowed queries prove their O(window) claim with these.
type Counters struct {
	BytesRead    int64
	TilesDecoded int64
}

// Open opens a tile file and parses its index. The returned Reader
// owns the file handle; release it with Close.
func Open(path string) (*Reader, error) {
	return OpenFS(vfs.OS, path)
}

// OpenFS is Open on an explicit filesystem — the seam fault-injection
// tests use to prove every read error surfaces as a typed error, never
// a panic or a silently wrong decode. A vfs.File is an io.ReaderAt, so
// the Reader's concurrent positioned reads work unchanged.
func OpenFS(fsys vfs.FS, path string) (*Reader, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tile: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tile: %w", err)
	}
	r, err := NewReader(f, info.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// NewReader parses the index of a tile file presented as a random
// access byte region.
func NewReader(ra io.ReaderAt, size int64) (*Reader, error) {
	r := &Reader{r: ra, size: size}
	if err := r.loadIndex(); err != nil {
		return nil, err
	}
	return r, nil
}

// Close releases the underlying file when the Reader owns one.
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

// Grid returns the file's tile grid.
func (r *Reader) Grid() Grid { return r.grid }

// BBox returns the grid bounding box recorded at pack time.
func (r *Reader) BBox() geom.Rect { return r.grid.BBox }

// NumBoxes returns the total box count across all tiles.
func (r *Reader) NumBoxes() int64 { return r.nBoxes }

// Labels returns the design's net-name annotations (shared slice; do
// not mutate).
func (r *Reader) Labels() []frontend.Label { return r.labels }

// Size returns the file size in bytes.
func (r *Reader) Size() int64 { return r.size }

// NonEmptyTiles returns the number of tiles holding at least one box —
// the denominator for "decoded k of n tiles" claims.
func (r *Reader) NonEmptyTiles() int64 {
	var n int64
	for i := range r.entries {
		if r.entries[i].count > 0 {
			n++
		}
	}
	return n
}

// Counters snapshots the I/O counters. They accumulate across every
// iterator served by this Reader, including concurrent band reads.
func (r *Reader) Counters() Counters {
	return Counters{BytesRead: r.bytesRead.Load(), TilesDecoded: r.tilesDecoded.Load()}
}

// readAt fetches a byte range, counting it.
func (r *Reader) readAt(buf []byte, off int64) error {
	n, err := r.r.ReadAt(buf, off)
	r.bytesRead.Add(int64(n))
	if err != nil {
		return corruptf("file", "read %d bytes at %d: %v", len(buf), off, err)
	}
	return nil
}

// loadIndex verifies header and trailer and decodes the footer.
func (r *Reader) loadIndex() error {
	if r.size < headerSize+trailerSize {
		return corruptf("file", "size %d below minimum %d", r.size, headerSize+trailerSize)
	}
	var hdr [headerSize]byte
	if err := r.readAt(hdr[:], 0); err != nil {
		return err
	}
	if string(hdr[:4]) != string(magicHeader[:]) {
		return corruptf("header", "bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != Version {
		return corruptf("header", "version %d, want %d", v, Version)
	}
	var tr [trailerSize]byte
	if err := r.readAt(tr[:], r.size-trailerSize); err != nil {
		return err
	}
	if string(tr[24:28]) != string(magicEnd[:]) {
		return corruptf("trailer", "bad end magic %q", tr[24:28])
	}
	footerOff := int64(binary.LittleEndian.Uint64(tr[0:]))
	footerLen := int64(binary.LittleEndian.Uint64(tr[8:]))
	footerSum := binary.LittleEndian.Uint64(tr[16:])
	if footerOff < headerSize || footerLen < 0 || footerOff+footerLen != r.size-trailerSize {
		return corruptf("trailer", "footer range [%d,+%d) inconsistent with size %d",
			footerOff, footerLen, r.size)
	}
	footer := make([]byte, footerLen)
	if err := r.readAt(footer, footerOff); err != nil {
		return err
	}
	if got := fnv64a(footer); got != footerSum {
		return corruptf("footer", "checksum %#x, want %#x", got, footerSum)
	}
	return r.decodeFooter(footer, footerOff)
}

// decodeFooter parses the checksum-verified footer blob and
// cross-checks the index against the payload region.
func (r *Reader) decodeFooter(b []byte, footerOff int64) error {
	const fixed = 32 + 16 + 8 + 8
	if len(b) < fixed {
		return corruptf("footer", "short fixed section: %d bytes", len(b))
	}
	g := Grid{BBox: getRect(b[0:])}
	g.TileW = int64(binary.LittleEndian.Uint64(b[32:]))
	g.TileH = int64(binary.LittleEndian.Uint64(b[40:]))
	g.Cols = int(binary.LittleEndian.Uint32(b[48:]))
	g.Rows = int(binary.LittleEndian.Uint32(b[52:]))
	nBoxes := int64(binary.LittleEndian.Uint64(b[56:]))
	if g.Cols < 1 || g.Rows < 1 || g.TileW < 1 || g.TileH < 1 ||
		g.Cols > 1<<20 || g.Rows > 1<<20 || nBoxes < 0 {
		return corruptf("footer", "implausible grid %dx%d tile %dx%d boxes %d",
			g.Cols, g.Rows, g.TileW, g.TileH, nBoxes)
	}
	nTiles := g.Rows * g.Cols
	need := fixed + nTiles*tileEntrySize + 4
	if len(b) < need {
		return corruptf("footer", "index needs %d bytes, footer has %d", need, len(b))
	}
	entries := make([]tileEntry, nTiles)
	var total int64
	p := b[fixed:]
	for i := range entries {
		e := &entries[i]
		e.off = int64(binary.LittleEndian.Uint64(p[0:]))
		e.count = binary.LittleEndian.Uint32(p[8:])
		e.sum = binary.LittleEndian.Uint64(p[12:])
		e.bbox = getRect(p[20:])
		p = p[tileEntrySize:]
		if e.count == 0 {
			continue
		}
		if e.off < headerSize || e.off+e.payloadLen() > footerOff {
			return corruptf("footer", "tile %d payload [%d,+%d) outside payload region [%d,%d)",
				i, e.off, e.payloadLen(), headerSize, footerOff)
		}
		total += int64(e.count)
	}
	if total != nBoxes {
		return corruptf("footer", "tile counts sum to %d, index records %d", total, nBoxes)
	}

	nLabels := int(binary.LittleEndian.Uint32(p[0:]))
	p = p[4:]
	labels := make([]frontend.Label, 0, nLabels)
	for i := 0; i < nLabels; i++ {
		if len(p) < 4 {
			return corruptf("footer", "label %d truncated", i)
		}
		nameLen := int(binary.LittleEndian.Uint32(p[0:]))
		p = p[4:]
		if nameLen < 0 || len(p) < nameLen+16+2 {
			return corruptf("footer", "label %d truncated", i)
		}
		name := string(p[:nameLen])
		p = p[nameLen:]
		l := frontend.Label{
			Name: name,
			At:   geom.Point{X: int64(binary.LittleEndian.Uint64(p[0:])), Y: int64(binary.LittleEndian.Uint64(p[8:]))},
		}
		l.Layer = tech.Layer(int8(p[16]))
		l.HasLayer = p[17] != 0
		p = p[18:]
		labels = append(labels, l)
	}

	r.grid = g
	r.nBoxes = nBoxes
	r.entries = entries
	r.labels = labels
	r.rowCum = make([]int64, g.Rows+1)
	for row := 0; row < g.Rows; row++ {
		var n int64
		for c := 0; c < g.Cols; c++ {
			n += int64(entries[row*g.Cols+c].count)
		}
		r.rowCum[row+1] = r.rowCum[row] + n
	}
	return nil
}

// decodeTile fetches, verifies and decodes one tile's payload,
// appending its boxes to dst. buf is the caller's reusable byte
// scratch, returned (possibly grown) for the next call.
func (r *Reader) decodeTile(row, col int, dst []frontend.Box, buf []byte) ([]frontend.Box, []byte, error) {
	e := &r.entries[row*r.grid.Cols+col]
	if e.count == 0 {
		return dst, buf, nil
	}
	need := int(e.payloadLen())
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	if err := r.readAt(buf, e.off); err != nil {
		return dst, buf, err
	}
	if got := fnv64a(buf); got != e.sum {
		return dst, buf, corruptf(fmt.Sprintf("tile[%d,%d]", row, col),
			"checksum %#x, want %#x", got, e.sum)
	}
	for i := 0; i < int(e.count); i++ {
		p := buf[i*BoxRecordSize:]
		layer := tech.Layer(int8(p[0]))
		if layer < 0 || int(layer) >= tech.NumLayers {
			return dst, buf, corruptf(fmt.Sprintf("tile[%d,%d]", row, col),
				"box %d layer %d out of range", i, layer)
		}
		rect := getRect(p[1:])
		if rect.XMin > rect.XMax || rect.YMin > rect.YMax {
			return dst, buf, corruptf(fmt.Sprintf("tile[%d,%d]", row, col),
				"box %d inverted rect %v", i, rect)
		}
		dst = append(dst, frontend.Box{Layer: layer, Rect: rect})
	}
	r.tilesDecoded.Add(1)
	return dst, buf, nil
}

// Band describes a horizontal band as the parallel sweep partitions
// them: the half-open y interval (Lo, Hi], unbounded on a side when
// the matching flag is false. Boxes intersecting the band are clipped
// to it exactly as scan's partitionBoxes clips — a box top exactly on
// Hi belongs to this band; a bottom exactly on Lo does not.
type Band struct {
	Lo, Hi       int64
	HasLo, HasHi bool
}

// WholeChip is the band covering everything: the serial-read case.
func WholeChip() Band { return Band{} }

// BandOf converts scan cut boundaries to a Band: band k of cuts has
// Hi = cuts[k-1] (unbounded for k = 0) and Lo = cuts[k] (unbounded for
// the last band).
func BandOf(cuts []int64, k int) Band {
	var b Band
	if k > 0 {
		b.HasHi, b.Hi = true, cuts[k-1]
	}
	if k < len(cuts) {
		b.HasLo, b.Lo = true, cuts[k]
	}
	return b
}

// ReadBand returns an iterator over the band's clipped boxes in
// non-increasing top order — a drop-in scan.Source for a band sweeper.
// The iterator decodes one tile row at a time into a reusable arena;
// its working set is one row of qualifying boxes, not the band.
//
// Iterators from one Reader may run concurrently.
func (r *Reader) ReadBand(b Band) *Iter {
	return r.newIter(b, geom.Rect{}, false)
}

// ReadWindow returns an iterator over the boxes overlapping rect,
// clipped to it, in non-increasing top order, consulting only tiles
// whose index bbox can matter — O(window) tiles, not O(chip). Labels
// are not filtered here; use WindowLabels.
func (r *Reader) ReadWindow(rect geom.Rect) *Iter {
	b := Band{Lo: rect.YMin, Hi: rect.YMax, HasLo: true, HasHi: true}
	return r.newIter(b, rect, true)
}

// WindowLabels returns the labels inside rect.
func (r *Reader) WindowLabels(rect geom.Rect) []frontend.Label {
	var out []frontend.Label
	for _, l := range r.labels {
		if rect.Contains(l.At) {
			out = append(out, l)
		}
	}
	return out
}

// Iter streams a band's (or window's) clipped boxes in non-increasing
// top order, implementing scan.Source. Errors cannot travel through
// that interface, so a decode failure marks the iterator exhausted and
// parks the error for Err() — the same fake-exhaustion contract the
// streamed flatten sources use; callers must check Err after the sweep.
type Iter struct {
	r      *Reader
	band   Band
	rect   geom.Rect // x-clip window; zero when !windowed
	wind   bool
	err    error
	done   bool
	inited bool

	// Phase A: boxes spanning down across Hi, clipped to top off at Hi.
	// They all share the band's first stop, so they go out first.
	span  []frontend.Box
	spanI int

	// Phase B: tile rows Hi-and-below, one row in the arena at a time.
	row   int // next tile row to load
	rowHi int // last tile row whose native tops can qualify
	arena []frontend.Box
	buf   []byte
	i     int

	pool     *Arena // where the scratch returns on clean exhaustion
	released bool
}

func (r *Reader) newIter(b Band, rect geom.Rect, windowed bool) *Iter {
	it := &Iter{r: r, band: b, rect: rect, wind: windowed, pool: r.pool}
	if it.pool != nil {
		s := it.pool.get()
		it.arena, it.span, it.buf = s.arena, s.span, s.buf
	}
	return it
}

// release hands the iterator's scratch back to the pool once, on clean
// exhaustion only: a failed iterator keeps (drops) its buffers.
func (it *Iter) release() {
	if it.pool == nil || it.released || it.err != nil {
		return
	}
	it.released = true
	it.pool.put(iterScratch{arena: it.arena, span: it.span, buf: it.buf})
	it.arena, it.span, it.buf = nil, nil, nil
}

// Err returns the first decode error the iterator hit, if any. An
// iterator that returned ok=false may have ended for this reason
// rather than genuine exhaustion.
func (it *Iter) Err() error { return it.err }

func (it *Iter) fail(err error) {
	if it.err == nil {
		it.err = err
	}
	it.done = true
	it.span = nil
	it.arena = nil
}

// init computes the tile-row range and collects the spanning boxes.
func (it *Iter) init() {
	it.inited = true
	g := it.r.grid
	if it.band.HasHi {
		// Rows that can hold tops > Hi: rows 0..RowOf(Hi+1). Collect
		// spanning boxes (top above Hi, bottom below it), clip their tops
		// to Hi. Native tops in (Lo, Hi] start at RowOf(Hi).
		rSpanMax := g.RowOf(it.band.Hi + 1)
		for row := 0; row <= rSpanMax; row++ {
			for c := 0; c < g.Cols; c++ {
				e := &it.r.entries[row*g.Cols+c]
				if e.count == 0 || e.bbox.YMax <= it.band.Hi || e.bbox.YMin >= it.band.Hi {
					continue
				}
				if it.wind && (e.bbox.XMin >= it.rect.XMax || e.bbox.XMax <= it.rect.XMin) {
					continue
				}
				start := len(it.arena)
				var err error
				it.arena, it.buf, err = it.r.decodeTile(row, c, it.arena, it.buf)
				if err != nil {
					it.fail(err)
					return
				}
				for _, b := range it.arena[start:] {
					if b.Rect.YMax > it.band.Hi && b.Rect.YMin < it.band.Hi {
						if cb, ok := it.clip(b); ok {
							it.span = append(it.span, cb)
						}
					}
				}
				it.arena = it.arena[:start]
			}
		}
		it.row = g.RowOf(it.band.Hi)
	} else {
		it.row = 0
	}
	if it.band.HasLo {
		it.rowHi = g.RowOf(it.band.Lo + 1)
	} else {
		it.rowHi = g.Rows - 1
	}
}

// clip clips a member box to the band (and window), reporting whether
// anything remains. Band membership is checked by the caller; the
// window's x test happens here.
func (it *Iter) clip(b frontend.Box) (frontend.Box, bool) {
	if it.band.HasHi && b.Rect.YMax > it.band.Hi {
		b.Rect.YMax = it.band.Hi
	}
	if it.band.HasLo && b.Rect.YMin < it.band.Lo {
		b.Rect.YMin = it.band.Lo
	}
	if it.wind {
		if b.Rect.XMin >= it.rect.XMax || b.Rect.XMax <= it.rect.XMin {
			return b, false
		}
		if b.Rect.XMin < it.rect.XMin {
			b.Rect.XMin = it.rect.XMin
		}
		if b.Rect.XMax > it.rect.XMax {
			b.Rect.XMax = it.rect.XMax
		}
	}
	return b, true
}

// loadRow refills the arena with the next tile row's qualifying
// boxes, sorted top-down. Returns false when rows are exhausted.
func (it *Iter) loadRow() bool {
	g := it.r.grid
	for it.row <= it.rowHi {
		row := it.row
		it.row++
		it.arena = it.arena[:0]
		it.i = 0
		for c := 0; c < g.Cols; c++ {
			e := &it.r.entries[row*g.Cols+c]
			if e.count == 0 {
				continue
			}
			// Native membership needs a top in (Lo, Hi]; the index bbox
			// bounds the tile's tops by YMax.
			if it.band.HasLo && e.bbox.YMax <= it.band.Lo {
				continue
			}
			if it.wind && (e.bbox.XMin >= it.rect.XMax || e.bbox.XMax <= it.rect.XMin) {
				continue
			}
			start := len(it.arena)
			var err error
			it.arena, it.buf, err = it.r.decodeTile(row, c, it.arena, it.buf)
			if err != nil {
				it.fail(err)
				return false
			}
			// Filter in place: keep native members only.
			kept := start
			for _, b := range it.arena[start:] {
				if it.band.HasHi && b.Rect.YMax > it.band.Hi {
					continue // spanning; emitted in phase A
				}
				if it.band.HasLo && b.Rect.YMax <= it.band.Lo {
					continue
				}
				if it.band.HasHi && b.Rect.YMin >= it.band.Hi {
					// Degenerate zero-height box sitting exactly on the band
					// boundary: partitionBoxes drops it (hiOK fails), so we do.
					continue
				}
				if cb, ok := it.clip(b); ok {
					it.arena[kept] = cb
					kept++
				}
			}
			it.arena = it.arena[:kept]
		}
		if len(it.arena) > 0 {
			// Tops within a row are unordered across columns; restore the
			// global non-increasing-top order. Rows are disjoint in top
			// range, so per-row sorting suffices.
			scan.SortTopDown(it.arena)
			return true
		}
	}
	return false
}

// NextTop implements scan.Source.
func (it *Iter) NextTop() (int64, bool) {
	if it.done {
		return 0, false
	}
	if !it.inited {
		it.init()
		if it.done {
			return 0, false
		}
	}
	if it.spanI < len(it.span) {
		return it.span[it.spanI].Rect.YMax, true
	}
	for it.i >= len(it.arena) {
		if !it.loadRow() {
			it.done = true
			it.release()
			return 0, false
		}
	}
	return it.arena[it.i].Rect.YMax, true
}

// Next implements scan.Source.
func (it *Iter) Next() (frontend.Box, bool) {
	if _, ok := it.NextTop(); !ok {
		return frontend.Box{}, false
	}
	if it.spanI < len(it.span) {
		b := it.span[it.spanI]
		it.spanI++
		if it.spanI == len(it.span) && it.pool == nil {
			it.span = nil // free early; pooled scratch waits for release
		}
		return b, true
	}
	b := it.arena[it.i]
	it.i++
	return b, true
}

// TopAt returns the box top at global descending-top rank i (0-based)
// across the whole file — the quantile probe scan.CutsFromTopsFunc
// needs to reproduce the in-RAM band cuts without draining the chip.
// Rows partition the top order, so only the row containing rank i is
// decoded; a rowTops cache makes repeated probes of one row free.
func (r *Reader) TopAt(i int64, cache *RowTopsCache) (int64, error) {
	if i < 0 || i >= r.nBoxes {
		return 0, fmt.Errorf("tile: top rank %d out of range [0,%d)", i, r.nBoxes)
	}
	// Find the row holding rank i: the last row with rowCum <= i.
	row := sort.Search(len(r.rowCum)-1, func(k int) bool { return r.rowCum[k+1] > i }) // first row with cum end > i
	tops, err := cache.rowTops(r, row)
	if err != nil {
		return 0, err
	}
	return tops[i-r.rowCum[row]], nil
}

// RowTopsCache memoises the per-row sorted top lists TopAt decodes.
// Zero value is ready to use; not safe for concurrent use.
type RowTopsCache struct {
	row  int
	tops []int64
	ok   bool
}

func (c *RowTopsCache) rowTops(r *Reader, row int) ([]int64, error) {
	if c.ok && c.row == row {
		return c.tops, nil
	}
	var boxes []frontend.Box
	var buf []byte
	var err error
	for col := 0; col < r.grid.Cols; col++ {
		boxes, buf, err = r.decodeTile(row, col, boxes, buf)
		if err != nil {
			return nil, err
		}
	}
	tops := make([]int64, len(boxes))
	for i, b := range boxes {
		tops[i] = b.Rect.YMax
	}
	sort.Slice(tops, func(a, b int) bool { return tops[a] > tops[b] })
	c.row, c.tops, c.ok = row, tops, true
	return tops, nil
}

// Sources builds one ReadBand iterator per band of cuts, ready to
// hand to scan.ParallelSweepSources.
func (r *Reader) Sources(cuts []int64) []*Iter {
	its := make([]*Iter, len(cuts)+1)
	for k := range its {
		its[k] = r.ReadBand(BandOf(cuts, k))
	}
	return its
}

var _ scan.Source = (*Iter)(nil)
