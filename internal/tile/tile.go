// Package tile implements ACE's tiled, spatially indexed on-disk
// layout format: the out-of-core substrate that lets a chip far larger
// than memory extract with bounded RSS.
//
// The design follows the Cloud-Optimized-GeoTIFF pattern: fixed
// spatial tiles written sequentially, followed by an IFD-style footer
// index with per-tile offsets, box counts, actual bounding boxes and
// checksums, so a reader can serve windowed queries by decoding only
// the tiles a window touches. The file is written front to back in one
// pass (the packer streams boxes straight off the lazy front end), and
// read back with pread-style random access, so band workers can pull
// exactly their band's tile ranges concurrently.
//
// Layout (all integers little-endian):
//
//	header   magic "ACTB" + format version                  (8 bytes)
//	tiles    per-tile box records, row-major, rows top-down
//	footer   grid geometry, per-tile index entries, labels
//	trailer  footer offset + length + FNV-64a checksum
//	         + end magic "ACTE"                            (28 bytes)
//
// A box record is layer (1 byte) + XMin, YMin, XMax, YMax (4×8 bytes)
// = 33 bytes. Within a tile, records are sorted in the canonical
// scan.SortTopDown order, so a tile decodes straight into a
// descending-top run and identical inputs produce byte-identical
// files.
//
// Spatial assignment: each box is stored exactly once, in the tile
// row whose y-range contains its top edge (clamped to the grid) and
// the tile column containing its left edge. Rows are keyed by box
// tops, so the concatenation of rows top-to-bottom is globally sorted
// by descending top — which is exactly the order the scanline sweep
// consumes. The per-tile index bbox records the boxes' true extent
// (a tall box can reach far below its home row), so windowed reads
// stay exact while touching only the tiles whose contents can matter.
//
// Verification reuses the internal/store discipline: the header magic
// and version gate the schema, the footer is checksummed as a unit,
// and every tile payload carries its own FNV-64a checksum in the
// index. Truncation, bit flips and stale versions all surface as
// *tile.CorruptError — never a panic and never silently wrong boxes.
package tile

import (
	"encoding/binary"
	"fmt"

	"ace/internal/geom"
)

// Format constants.
const (
	// Version is the on-disk schema version. Bump it when the layout
	// changes; old files then fail with a version CorruptError.
	Version = 1

	headerSize  = 8  // magic + version
	trailerSize = 28 // footer off + len + checksum + end magic

	// BoxRecordSize is the encoded size of one box record: layer byte
	// plus four int64 coordinates.
	BoxRecordSize = 1 + 4*8

	// tileEntrySize is one footer index entry: payload offset (8),
	// box count (4), payload checksum (8) and the true bbox (32).
	tileEntrySize = 8 + 4 + 8 + 32
)

var (
	magicHeader = [4]byte{'A', 'C', 'T', 'B'}
	magicEnd    = [4]byte{'A', 'C', 'T', 'E'}
)

// DefaultGrid is the default tile-grid resolution (columns and rows)
// used when the caller does not choose one. 64×64 keeps the footer
// index small (~213 KiB) while a band read's working set — one row of
// tiles — is about 1/64th of the chip.
const DefaultGrid = 64

// CorruptError reports a structural fault in a tile file: truncation,
// bad magic, a stale version, a checksum mismatch or an inconsistent
// index. Region locates the damage (header, footer, trailer, or
// tile[r,c]).
type CorruptError struct {
	Region string
	Msg    string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("tile: %s: %s", e.Region, e.Msg)
}

func corruptf(region, format string, args ...any) error {
	return &CorruptError{Region: region, Msg: fmt.Sprintf(format, args...)}
}

// Grid is the fixed spatial tiling of a chip: the grid bounding box
// and the tile cell size. Rows count top-down (row 0 holds the
// highest box tops); columns count left to right.
type Grid struct {
	BBox  geom.Rect
	TileW int64
	TileH int64
	Cols  int
	Rows  int
}

// NewGrid tiles bbox into a cols×rows grid. Degenerate boxes widen to
// one unit so every box lands in a cell.
func NewGrid(bbox geom.Rect, cols, rows int) Grid {
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	w, h := bbox.W(), bbox.H()
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	tw := (w + int64(cols) - 1) / int64(cols)
	th := (h + int64(rows) - 1) / int64(rows)
	if tw < 1 {
		tw = 1
	}
	if th < 1 {
		th = 1
	}
	return Grid{BBox: bbox, TileW: tw, TileH: th, Cols: cols, Rows: rows}
}

// RowOf returns the tile row for a box whose top edge is yMax: the row
// whose half-open y-range (rowLo, rowHi] contains it, clamped to the
// grid so overshooting geometry (manhattanisation rounds up to the
// grid) still has a home.
func (g Grid) RowOf(yMax int64) int {
	if yMax >= g.BBox.YMax {
		return 0
	}
	r := int((g.BBox.YMax - yMax) / g.TileH)
	if yMax == g.BBox.YMax-int64(r)*g.TileH {
		// Tops exactly on a row boundary belong to the row above
		// (half-open (lo, hi] ranges), mirroring the band-cut rule.
		r--
	}
	if r < 0 {
		r = 0
	}
	if r >= g.Rows {
		r = g.Rows - 1
	}
	return r
}

// ColOf returns the tile column for a box whose left edge is xMin,
// clamped to the grid.
func (g Grid) ColOf(xMin int64) int {
	if xMin <= g.BBox.XMin {
		return 0
	}
	c := int((xMin - g.BBox.XMin) / g.TileW)
	if c >= g.Cols {
		c = g.Cols - 1
	}
	return c
}

// RowTop returns the inclusive upper bound of row r's nominal top
// range. Row 0 is unbounded above (clamping sends every overshooting
// top there).
func (g Grid) RowTop(r int) (int64, bool) {
	if r <= 0 {
		return 0, false // +inf
	}
	return g.BBox.YMax - int64(r)*g.TileH, true
}

// RowBottom returns the exclusive lower bound of row r's nominal top
// range. The last row is unbounded below.
func (g Grid) RowBottom(r int) (int64, bool) {
	if r >= g.Rows-1 {
		return 0, false // -inf
	}
	return g.BBox.YMax - int64(r+1)*g.TileH, true
}

// tileEntry is one footer index record.
type tileEntry struct {
	off   int64  // payload offset from file start; 0 when count == 0
	count uint32 // boxes in the tile
	sum   uint64 // FNV-64a over the payload bytes
	bbox  geom.Rect
}

func (e *tileEntry) payloadLen() int64 { return int64(e.count) * BoxRecordSize }

// fnv64a hashes a byte slice (the store package's checksum, over raw
// bytes instead of strings).
func fnv64a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime
	}
	return h
}

// putRect / getRect encode a rectangle as 4 little-endian int64s.
func putRect(b []byte, r geom.Rect) {
	binary.LittleEndian.PutUint64(b[0:], uint64(r.XMin))
	binary.LittleEndian.PutUint64(b[8:], uint64(r.YMin))
	binary.LittleEndian.PutUint64(b[16:], uint64(r.XMax))
	binary.LittleEndian.PutUint64(b[24:], uint64(r.YMax))
}

func getRect(b []byte) geom.Rect {
	return geom.Rect{
		XMin: int64(binary.LittleEndian.Uint64(b[0:])),
		YMin: int64(binary.LittleEndian.Uint64(b[8:])),
		XMax: int64(binary.LittleEndian.Uint64(b[16:])),
		YMax: int64(binary.LittleEndian.Uint64(b[24:])),
	}
}
