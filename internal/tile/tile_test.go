package tile

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ace/internal/frontend"
	"ace/internal/geom"
	"ace/internal/scan"
	"ace/internal/tech"
)

// genBoxes builds a deterministic pseudo-random design: n boxes over a
// coordinate range wide enough to span many tiles, with a few tall
// boxes that cross row (and band) boundaries.
func genBoxes(seed int64, n int) []frontend.Box {
	rng := rand.New(rand.NewSource(seed))
	boxes := make([]frontend.Box, n)
	for i := range boxes {
		x := rng.Int63n(20000) - 10000
		y := rng.Int63n(20000) - 10000
		w := rng.Int63n(400) + 1
		h := rng.Int63n(400) + 1
		if rng.Intn(20) == 0 {
			h = rng.Int63n(8000) + 1000 // tall: spans rows and cuts
		}
		boxes[i] = frontend.Box{
			Layer: tech.Layer(rng.Intn(tech.NumLayers)),
			Rect:  geom.Rect{XMin: x, YMin: y, XMax: x + w, YMax: y + h},
		}
	}
	scan.SortTopDown(boxes)
	return boxes
}

func bboxOf(boxes []frontend.Box) geom.Rect {
	bb := boxes[0].Rect
	for _, b := range boxes[1:] {
		bb = bb.Union(b.Rect)
	}
	return bb
}

// pack writes boxes+labels into an in-memory tile file.
func pack(t *testing.T, boxes []frontend.Box, labels []frontend.Label, cols, rows int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, NewGrid(bboxOf(boxes), cols, rows))
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, l := range labels {
		w.AddLabel(l)
	}
	for _, b := range boxes {
		if err := w.Add(b); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func open(t *testing.T, raw []byte) *Reader {
	t.Helper()
	r, err := NewReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	return r
}

func drainIter(t *testing.T, it *Iter) []frontend.Box {
	t.Helper()
	var out []frontend.Box
	lastTop := int64(0)
	first := true
	for {
		top, ok := it.NextTop()
		if !ok {
			break
		}
		b, ok := it.Next()
		if !ok {
			t.Fatalf("NextTop says more, Next disagrees")
		}
		if b.Rect.YMax != top {
			t.Fatalf("NextTop %d but box top %d", top, b.Rect.YMax)
		}
		if !first && top > lastTop {
			t.Fatalf("tops not non-increasing: %d after %d", top, lastTop)
		}
		first, lastTop = false, top
		out = append(out, b)
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	return out
}

// canon sorts a box slice into the canonical total order so multisets
// compare as slices.
func canon(boxes []frontend.Box) []frontend.Box {
	out := append([]frontend.Box(nil), boxes...)
	scan.SortTopDown(out)
	return out
}

func TestRoundTrip(t *testing.T) {
	boxes := genBoxes(1, 3000)
	labels := []frontend.Label{
		{Name: "vdd", At: geom.Pt(10, 20)},
		{Name: "gnd", At: geom.Pt(-5, 7), Layer: tech.Metal, HasLayer: true},
	}
	raw := pack(t, boxes, labels, 8, 8)
	r := open(t, raw)
	if r.NumBoxes() != int64(len(boxes)) {
		t.Fatalf("NumBoxes %d, want %d", r.NumBoxes(), len(boxes))
	}
	if !reflect.DeepEqual(r.Labels(), labels) {
		t.Fatalf("labels roundtrip: got %+v", r.Labels())
	}
	got := drainIter(t, r.ReadBand(WholeChip()))
	if !reflect.DeepEqual(canon(got), canon(boxes)) {
		t.Fatalf("whole-chip read is not the packed multiset: %d vs %d boxes", len(got), len(boxes))
	}
	if io := r.Counters(); io.TilesDecoded != r.NonEmptyTiles() {
		t.Fatalf("whole-chip read decoded %d tiles, %d non-empty", io.TilesDecoded, r.NonEmptyTiles())
	}
}

func TestDeterministicBytes(t *testing.T) {
	boxes := genBoxes(2, 1500)
	raw1 := pack(t, boxes, nil, 8, 8)
	// Permute ties: reverse runs of equal tops. The input stays a legal
	// descending-top stream but arrives in a different order.
	perm := append([]frontend.Box(nil), boxes...)
	for i := 0; i < len(perm); {
		j := i
		for j < len(perm) && perm[j].Rect.YMax == perm[i].Rect.YMax {
			j++
		}
		for a, b := i, j-1; a < b; a, b = a+1, b-1 {
			perm[a], perm[b] = perm[b], perm[a]
		}
		i = j
	}
	raw2 := pack(t, perm, nil, 8, 8)
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("same multiset packed to different bytes")
	}
}

// refPartition implements the documented partitionBoxes contract: band
// k covers (lo_k, hi_k], hi_0 = +inf, lo_last = -inf; boxes clip to
// their bands, a top exactly on a cut goes to the band below.
func refPartition(boxes []frontend.Box, cuts []int64) [][]frontend.Box {
	out := make([][]frontend.Box, len(cuts)+1)
	for k := range out {
		var hi, lo int64
		hasHi, hasLo := k > 0, k < len(cuts)
		if hasHi {
			hi = cuts[k-1]
		}
		if hasLo {
			lo = cuts[k]
		}
		for _, b := range boxes {
			if hasLo && b.Rect.YMax <= lo {
				continue
			}
			if hasHi && b.Rect.YMin >= hi {
				continue
			}
			r := b.Rect
			if hasHi && r.YMax > hi {
				r.YMax = hi
			}
			if hasLo && r.YMin < lo {
				r.YMin = lo
			}
			out[k] = append(out[k], frontend.Box{Layer: b.Layer, Rect: r})
		}
	}
	return out
}

func TestBandReadMatchesPartition(t *testing.T) {
	boxes := genBoxes(3, 4000)
	raw := pack(t, boxes, nil, 16, 16)
	r := open(t, raw)
	tops := make([]int64, len(boxes))
	for i, b := range boxes {
		tops[i] = b.Rect.YMax
	}
	for _, workers := range []int{2, 3, 4, 7} {
		cuts := scan.CutsFromTops(tops, workers)
		want := refPartition(boxes, cuts)
		its := r.Sources(cuts)
		for k, it := range its {
			got := drainIter(t, it)
			if !reflect.DeepEqual(canon(got), canon(want[k])) {
				t.Fatalf("workers=%d band %d of %d: %d boxes, want %d",
					workers, k, len(its), len(got), len(want[k]))
			}
		}
	}
}

func TestWindowRead(t *testing.T) {
	boxes := genBoxes(4, 4000)
	raw := pack(t, boxes, nil, 16, 16)
	r := open(t, raw)
	windows := []geom.Rect{
		{XMin: -2000, YMin: -2000, XMax: 2000, YMax: 2000},
		{XMin: -11000, YMin: -11000, XMax: 23000, YMax: 23000}, // whole chip
		{XMin: 0, YMin: 0, XMax: 1, YMax: 1},                   // near-point
		{XMin: 9000, YMin: -9500, XMax: 9800, YMax: -9000},
	}
	for _, win := range windows {
		var want []frontend.Box
		for _, b := range boxes {
			if !b.Rect.Overlaps(win) {
				continue
			}
			c := b.Rect.Intersect(win)
			want = append(want, frontend.Box{Layer: b.Layer, Rect: c})
		}
		got := drainIter(t, r.ReadWindow(win))
		if !reflect.DeepEqual(canon(got), canon(want)) {
			t.Fatalf("window %v: %d boxes, want %d", win, len(got), len(want))
		}
	}
}

func TestWindowReadTouchesOWindowTiles(t *testing.T) {
	boxes := genBoxes(5, 20000)
	raw := pack(t, boxes, nil, 32, 32)
	r := open(t, raw)
	total := r.NonEmptyTiles()
	io0 := r.Counters()
	win := geom.Rect{XMin: -500, YMin: -500, XMax: 500, YMax: 500}
	drainIter(t, r.ReadWindow(win))
	io1 := r.Counters()
	decoded := io1.TilesDecoded - io0.TilesDecoded
	if decoded*4 > total {
		t.Fatalf("small window decoded %d of %d tiles — not O(window)", decoded, total)
	}
	if int64(len(raw))/4 < io1.BytesRead-io0.BytesRead {
		t.Fatalf("small window read %d of %d bytes", io1.BytesRead-io0.BytesRead, len(raw))
	}
}

func TestTopAt(t *testing.T) {
	boxes := genBoxes(6, 2500)
	raw := pack(t, boxes, nil, 8, 8)
	r := open(t, raw)
	tops := make([]int64, len(boxes))
	for i, b := range boxes {
		tops[i] = b.Rect.YMax
	}
	sort.Slice(tops, func(a, b int) bool { return tops[a] > tops[b] })
	var cache RowTopsCache
	for _, i := range []int64{0, 1, 17, 1249, 1250, 2499} {
		got, err := r.TopAt(i, &cache)
		if err != nil {
			t.Fatalf("TopAt(%d): %v", i, err)
		}
		if got != tops[i] {
			t.Fatalf("TopAt(%d) = %d, want %d", i, got, tops[i])
		}
	}
	if _, err := r.TopAt(int64(len(boxes)), &cache); err == nil {
		t.Fatalf("TopAt out of range: want error")
	}
	// Cuts computed from disk must match cuts from the in-RAM top list.
	for _, workers := range []int{2, 4, 8} {
		want := scan.CutsFromTops(tops, workers)
		var c2 RowTopsCache
		got := scan.CutsFromTopsFunc(len(tops), func(i int) int64 {
			v, err := r.TopAt(int64(i), &c2)
			if err != nil {
				t.Fatalf("TopAt(%d): %v", i, err)
			}
			return v
		}, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: disk cuts %v, want %v", workers, got, want)
		}
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	boxes := genBoxes(7, 100)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, NewGrid(bboxOf(boxes), 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	last := boxes[len(boxes)-1]
	if err := w.Add(last); err != nil {
		t.Fatal(err)
	}
	first := boxes[0]
	if first.Rect.YMax <= last.Rect.YMax {
		t.Skip("generated boxes do not span rows")
	}
	if err := w.Add(first); err == nil {
		t.Fatalf("out-of-order Add accepted")
	}
}

func TestDegenerateOnCutDropped(t *testing.T) {
	// A zero-height box sitting exactly on a cut is dropped by
	// partitionBoxes (both bands reject it); the band reader must agree.
	boxes := []frontend.Box{
		{Layer: tech.Metal, Rect: geom.Rect{XMin: 0, YMin: 900, XMax: 100, YMax: 1000}},
		{Layer: tech.Metal, Rect: geom.Rect{XMin: 0, YMin: 500, XMax: 100, YMax: 500}}, // degenerate on cut
		{Layer: tech.Metal, Rect: geom.Rect{XMin: 0, YMin: 0, XMax: 100, YMax: 400}},
	}
	raw := pack(t, boxes, nil, 2, 2)
	r := open(t, raw)
	cuts := []int64{500}
	want := refPartition(boxes, cuts)
	for k, it := range r.Sources(cuts) {
		got := drainIter(t, it)
		if !reflect.DeepEqual(canon(got), canon(want[k])) {
			t.Fatalf("band %d: got %+v want %+v", k, got, want[k])
		}
	}
}

func TestGridEdges(t *testing.T) {
	// Single box, 1x1 grid, and a grid larger than the coordinate span.
	for _, dims := range [][2]int{{1, 1}, {64, 64}, {3, 5}} {
		boxes := []frontend.Box{{Layer: tech.Poly, Rect: geom.Rect{XMin: 0, YMin: 0, XMax: 10, YMax: 10}}}
		raw := pack(t, boxes, nil, dims[0], dims[1])
		r := open(t, raw)
		got := drainIter(t, r.ReadBand(WholeChip()))
		if !reflect.DeepEqual(got, boxes) {
			t.Fatalf("grid %v: got %+v", dims, got)
		}
	}
}
