package tile

import (
	"encoding/binary"
	"fmt"
	"io"

	"ace/internal/frontend"
	"ace/internal/scan"
	"ace/internal/tech"
)

// Writer packs a descending-top box stream into the tile format in a
// single forward pass — no seeking, so it composes with any io.Writer
// (the packer puts a bufio.Writer over the output file). Because every
// box is stored in the row its top edge falls in, and the input stream
// is sorted by descending top, the writer only ever buffers the row
// currently being filled: peak memory is one tile row, not the chip.
type Writer struct {
	w   io.Writer
	g   Grid
	off int64 // bytes emitted so far == next payload offset
	err error

	curRow  int
	buckets [][]frontend.Box // per-column pending boxes of curRow
	entries []tileEntry      // filled row by row as rows flush
	nBoxes  int64
	labels  []frontend.Label

	buf []byte // reusable payload encode buffer
}

// NewWriter starts a tile file on w with the given grid, writing the
// header immediately.
func NewWriter(w io.Writer, g Grid) (*Writer, error) {
	if g.Cols < 1 || g.Rows < 1 || g.TileW < 1 || g.TileH < 1 {
		return nil, fmt.Errorf("tile: invalid grid %+v", g)
	}
	tw := &Writer{
		w:       w,
		g:       g,
		buckets: make([][]frontend.Box, g.Cols),
		entries: make([]tileEntry, 0, g.Rows*g.Cols),
	}
	var hdr [headerSize]byte
	copy(hdr[:4], magicHeader[:])
	binary.LittleEndian.PutUint32(hdr[4:], Version)
	if err := tw.write(hdr[:]); err != nil {
		return nil, err
	}
	return tw, nil
}

func (tw *Writer) write(b []byte) error {
	if tw.err != nil {
		return tw.err
	}
	n, err := tw.w.Write(b)
	tw.off += int64(n)
	if err != nil {
		tw.err = fmt.Errorf("tile: write: %w", err)
	}
	return tw.err
}

// Add appends one box. Boxes must arrive in non-increasing top order
// (the frontend stream's natural order); a box whose home row was
// already flushed is an ordering bug in the caller and is rejected.
func (tw *Writer) Add(b frontend.Box) error {
	if tw.err != nil {
		return tw.err
	}
	if b.Layer < 0 || int(b.Layer) >= tech.NumLayers {
		tw.err = fmt.Errorf("tile: box layer %d out of range", b.Layer)
		return tw.err
	}
	r := tw.g.RowOf(b.Rect.YMax)
	if r < tw.curRow {
		tw.err = fmt.Errorf("tile: box top %d out of order (row %d already flushed, at row %d)",
			b.Rect.YMax, r, tw.curRow)
		return tw.err
	}
	for tw.curRow < r {
		if err := tw.flushRow(); err != nil {
			return err
		}
	}
	c := tw.g.ColOf(b.Rect.XMin)
	tw.buckets[c] = append(tw.buckets[c], b)
	tw.nBoxes++
	return nil
}

// AddLabel records a net-name annotation; labels live in the footer
// and are returned whole by the reader (there are few of them).
func (tw *Writer) AddLabel(l frontend.Label) {
	tw.labels = append(tw.labels, l)
}

// flushRow encodes and writes every tile of the current row, appends
// their index entries, and advances to the next row.
func (tw *Writer) flushRow() error {
	for c := 0; c < tw.g.Cols; c++ {
		boxes := tw.buckets[c]
		if len(boxes) == 0 {
			tw.entries = append(tw.entries, tileEntry{})
			continue
		}
		// Canonical within-tile order makes the file a pure function of
		// the box multiset: identical chips pack to identical bytes.
		scan.SortTopDown(boxes)
		need := len(boxes) * BoxRecordSize
		if cap(tw.buf) < need {
			tw.buf = make([]byte, need)
		}
		buf := tw.buf[:need]
		bbox := boxes[0].Rect
		for i, b := range boxes {
			p := buf[i*BoxRecordSize:]
			p[0] = byte(b.Layer)
			putRect(p[1:], b.Rect)
			if b.Rect.XMin < bbox.XMin {
				bbox.XMin = b.Rect.XMin
			}
			if b.Rect.YMin < bbox.YMin {
				bbox.YMin = b.Rect.YMin
			}
			if b.Rect.XMax > bbox.XMax {
				bbox.XMax = b.Rect.XMax
			}
			if b.Rect.YMax > bbox.YMax {
				bbox.YMax = b.Rect.YMax
			}
		}
		e := tileEntry{
			off:   tw.off,
			count: uint32(len(boxes)),
			sum:   fnv64a(buf),
			bbox:  bbox,
		}
		if err := tw.write(buf); err != nil {
			return err
		}
		tw.entries = append(tw.entries, e)
		tw.buckets[c] = boxes[:0]
	}
	tw.curRow++
	return nil
}

// Close flushes the remaining rows and writes the footer and trailer.
// It does not close the underlying writer.
func (tw *Writer) Close() error {
	if tw.err != nil {
		return tw.err
	}
	for tw.curRow < tw.g.Rows {
		if err := tw.flushRow(); err != nil {
			return err
		}
	}
	footer := tw.encodeFooter()
	footerOff := tw.off
	if err := tw.write(footer); err != nil {
		return err
	}
	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:], uint64(footerOff))
	binary.LittleEndian.PutUint64(tr[8:], uint64(len(footer)))
	binary.LittleEndian.PutUint64(tr[16:], fnv64a(footer))
	copy(tr[24:], magicEnd[:])
	return tw.write(tr[:])
}

// encodeFooter assembles the footer blob: grid geometry, the per-tile
// index, and the label table. One trailer checksum covers it all.
func (tw *Writer) encodeFooter() []byte {
	n := 32 + 16 + 8 + 8 + len(tw.entries)*tileEntrySize + 4
	for _, l := range tw.labels {
		n += 4 + len(l.Name) + 16 + 2
	}
	out := make([]byte, 0, n)
	var scratch [32]byte

	putRect(scratch[:32], tw.g.BBox)
	out = append(out, scratch[:32]...)
	binary.LittleEndian.PutUint64(scratch[0:], uint64(tw.g.TileW))
	binary.LittleEndian.PutUint64(scratch[8:], uint64(tw.g.TileH))
	out = append(out, scratch[:16]...)
	binary.LittleEndian.PutUint32(scratch[0:], uint32(tw.g.Cols))
	binary.LittleEndian.PutUint32(scratch[4:], uint32(tw.g.Rows))
	out = append(out, scratch[:8]...)
	binary.LittleEndian.PutUint64(scratch[0:], uint64(tw.nBoxes))
	out = append(out, scratch[:8]...)

	for _, e := range tw.entries {
		binary.LittleEndian.PutUint64(scratch[0:], uint64(e.off))
		binary.LittleEndian.PutUint32(scratch[8:], e.count)
		binary.LittleEndian.PutUint64(scratch[12:], e.sum)
		out = append(out, scratch[:20]...)
		putRect(scratch[:32], e.bbox)
		out = append(out, scratch[:32]...)
	}

	binary.LittleEndian.PutUint32(scratch[0:], uint32(len(tw.labels)))
	out = append(out, scratch[:4]...)
	for _, l := range tw.labels {
		binary.LittleEndian.PutUint32(scratch[0:], uint32(len(l.Name)))
		out = append(out, scratch[:4]...)
		out = append(out, l.Name...)
		binary.LittleEndian.PutUint64(scratch[0:], uint64(l.At.X))
		binary.LittleEndian.PutUint64(scratch[8:], uint64(l.At.Y))
		out = append(out, scratch[:16]...)
		hasLayer := byte(0)
		if l.HasLayer {
			hasLayer = 1
		}
		out = append(out, byte(l.Layer), hasLayer)
	}
	return out
}
