// Package uf implements a growable union-find (disjoint-set) structure
// with path compression and union by rank. The extractor uses it for
// net equivalence: two pieces of geometry found to be electrically
// connected have their net classes unioned; the class representative
// surviving at the end of the sweep becomes the net's identity.
package uf

// Forest is a union-find over dense integer ids allocated by Make.
// The zero value is an empty forest ready for use.
type Forest struct {
	parent []int32
	rank   []int8
	sets   int
}

// Make allocates a fresh singleton set and returns its id.
func (f *Forest) Make() int {
	id := len(f.parent)
	f.parent = append(f.parent, int32(id))
	f.rank = append(f.rank, 0)
	f.sets++
	return id
}

// Len returns the number of ids allocated so far.
func (f *Forest) Len() int { return len(f.parent) }

// Sets returns the number of distinct sets.
func (f *Forest) Sets() int { return f.sets }

// Find returns the canonical representative of x's set.
func (f *Forest) Find(x int) int {
	root := x
	for int(f.parent[root]) != root {
		root = int(f.parent[root])
	}
	for int(f.parent[x]) != root {
		x, f.parent[x] = int(f.parent[x]), int32(root)
	}
	return root
}

// Union merges the sets containing x and y and returns the resulting
// representative.
func (f *Forest) Union(x, y int) int {
	rx, ry := f.Find(x), f.Find(y)
	if rx == ry {
		return rx
	}
	if f.rank[rx] < f.rank[ry] {
		rx, ry = ry, rx
	}
	f.parent[ry] = int32(rx)
	if f.rank[rx] == f.rank[ry] {
		f.rank[rx]++
	}
	f.sets--
	return rx
}

// Same reports whether x and y are in the same set.
func (f *Forest) Same(x, y int) bool { return f.Find(x) == f.Find(y) }

// Reset restores the forest to the empty state, retaining capacity.
// The modified ACE used by the hierarchical extractor relies on cheap
// re-initialisation between windows (HEXT §3); Reset provides it.
func (f *Forest) Reset() {
	f.parent = f.parent[:0]
	f.rank = f.rank[:0]
	f.sets = 0
}

// Forest32 is a union-find over dense int32 ids with path compression
// and union by size, kept in two flat int32 slices. It is the variant
// the extractor's builder uses on its hot path: ids stay int32
// end-to-end (no int conversions), the size array doubles as the
// class-cardinality table, and a whole forest can be absorbed into
// another in O(n) copies — which is what stitches per-band builders
// together in the parallel sweep. The zero value is ready for use.
type Forest32 struct {
	parent []int32
	size   []int32
	sets   int
}

// Make allocates a fresh singleton set and returns its id.
func (f *Forest32) Make() int32 {
	id := int32(len(f.parent))
	f.parent = append(f.parent, id)
	f.size = append(f.size, 1)
	f.sets++
	return id
}

// Reserve grows the forest's capacity so the next n Makes (or one
// Grow(n)) allocate no memory. It never shrinks and never changes the
// forest's contents.
func (f *Forest32) Reserve(n int) {
	need := len(f.parent) + n
	if cap(f.parent) < need {
		parent := make([]int32, len(f.parent), need)
		copy(parent, f.parent)
		f.parent = parent
	}
	if cap(f.size) < need {
		size := make([]int32, len(f.size), need)
		copy(size, f.size)
		f.size = size
	}
}

// Grow allocates n fresh singletons at once and returns the first id.
func (f *Forest32) Grow(n int) int32 {
	first := int32(len(f.parent))
	for i := 0; i < n; i++ {
		f.parent = append(f.parent, first+int32(i))
		f.size = append(f.size, 1)
	}
	f.sets += n
	return first
}

// Len returns the number of ids allocated so far.
func (f *Forest32) Len() int { return len(f.parent) }

// Sets returns the number of distinct sets.
func (f *Forest32) Sets() int { return f.sets }

// Find returns the canonical representative of x's set.
func (f *Forest32) Find(x int32) int32 {
	root := x
	for f.parent[root] != root {
		root = f.parent[root]
	}
	for f.parent[x] != root {
		x, f.parent[x] = f.parent[x], root
	}
	return root
}

// Union merges the sets containing x and y and returns the surviving
// representative (the root of the larger class).
func (f *Forest32) Union(x, y int32) int32 {
	rx, ry := f.Find(x), f.Find(y)
	if rx == ry {
		return rx
	}
	if f.size[rx] < f.size[ry] {
		rx, ry = ry, rx
	}
	f.parent[ry] = rx
	f.size[rx] += f.size[ry]
	f.sets--
	return rx
}

// Same reports whether x and y are in the same set.
func (f *Forest32) Same(x, y int32) bool { return f.Find(x) == f.Find(y) }

// Absorb appends every element of o into f, preserving o's set
// structure, and returns the offset added to o's ids: element i of o
// becomes element offset+i of f. o is not modified.
func (f *Forest32) Absorb(o *Forest32) int32 {
	off := int32(len(f.parent))
	for _, p := range o.parent {
		f.parent = append(f.parent, p+off)
	}
	f.size = append(f.size, o.size...)
	f.sets += o.sets
	return off
}

// Reset restores the forest to the empty state, retaining capacity.
func (f *Forest32) Reset() {
	f.parent = f.parent[:0]
	f.size = f.size[:0]
	f.sets = 0
}
