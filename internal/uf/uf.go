// Package uf implements a growable union-find (disjoint-set) structure
// with path compression and union by rank. The extractor uses it for
// net equivalence: two pieces of geometry found to be electrically
// connected have their net classes unioned; the class representative
// surviving at the end of the sweep becomes the net's identity.
package uf

// Forest is a union-find over dense integer ids allocated by Make.
// The zero value is an empty forest ready for use.
type Forest struct {
	parent []int32
	rank   []int8
	sets   int
}

// Make allocates a fresh singleton set and returns its id.
func (f *Forest) Make() int {
	id := len(f.parent)
	f.parent = append(f.parent, int32(id))
	f.rank = append(f.rank, 0)
	f.sets++
	return id
}

// Len returns the number of ids allocated so far.
func (f *Forest) Len() int { return len(f.parent) }

// Sets returns the number of distinct sets.
func (f *Forest) Sets() int { return f.sets }

// Find returns the canonical representative of x's set.
func (f *Forest) Find(x int) int {
	root := x
	for int(f.parent[root]) != root {
		root = int(f.parent[root])
	}
	for int(f.parent[x]) != root {
		x, f.parent[x] = int(f.parent[x]), int32(root)
	}
	return root
}

// Union merges the sets containing x and y and returns the resulting
// representative.
func (f *Forest) Union(x, y int) int {
	rx, ry := f.Find(x), f.Find(y)
	if rx == ry {
		return rx
	}
	if f.rank[rx] < f.rank[ry] {
		rx, ry = ry, rx
	}
	f.parent[ry] = int32(rx)
	if f.rank[rx] == f.rank[ry] {
		f.rank[rx]++
	}
	f.sets--
	return rx
}

// Same reports whether x and y are in the same set.
func (f *Forest) Same(x, y int) bool { return f.Find(x) == f.Find(y) }

// Reset restores the forest to the empty state, retaining capacity.
// The modified ACE used by the hierarchical extractor relies on cheap
// re-initialisation between windows (HEXT §3); Reset provides it.
func (f *Forest) Reset() {
	f.parent = f.parent[:0]
	f.rank = f.rank[:0]
	f.sets = 0
}
