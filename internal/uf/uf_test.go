package uf

import (
	"math/rand"
	"testing"
)

func TestBasic(t *testing.T) {
	var f Forest
	a, b, c := f.Make(), f.Make(), f.Make()
	if f.Sets() != 3 || f.Len() != 3 {
		t.Fatalf("Sets=%d Len=%d", f.Sets(), f.Len())
	}
	if f.Same(a, b) {
		t.Fatal("fresh sets should differ")
	}
	f.Union(a, b)
	if !f.Same(a, b) || f.Same(a, c) {
		t.Fatal("union wrong")
	}
	if f.Sets() != 2 {
		t.Fatalf("Sets=%d after one union", f.Sets())
	}
	// Union of already-joined sets must not change the count.
	f.Union(b, a)
	if f.Sets() != 2 {
		t.Fatalf("Sets=%d after redundant union", f.Sets())
	}
}

func TestFindIsCanonical(t *testing.T) {
	var f Forest
	ids := make([]int, 100)
	for i := range ids {
		ids[i] = f.Make()
	}
	for i := 1; i < len(ids); i++ {
		f.Union(ids[i-1], ids[i])
	}
	root := f.Find(ids[0])
	for _, id := range ids {
		if f.Find(id) != root {
			t.Fatalf("id %d has root %d, want %d", id, f.Find(id), root)
		}
	}
	if f.Sets() != 1 {
		t.Fatalf("Sets=%d", f.Sets())
	}
}

func TestAgainstNaive(t *testing.T) {
	// Randomised differential test against a brute-force partition.
	rng := rand.New(rand.NewSource(42))
	var f Forest
	const n = 200
	naive := make([]int, n)
	for i := 0; i < n; i++ {
		f.Make()
		naive[i] = i
	}
	relabel := func(from, to int) {
		for i := range naive {
			if naive[i] == from {
				naive[i] = to
			}
		}
	}
	for step := 0; step < 500; step++ {
		x, y := rng.Intn(n), rng.Intn(n)
		f.Union(x, y)
		relabel(naive[x], naive[y])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if f.Same(i, j) != (naive[i] == naive[j]) {
				t.Fatalf("Same(%d,%d)=%v, naive=%v", i, j, f.Same(i, j), naive[i] == naive[j])
			}
		}
	}
	// Count distinct naive labels and compare with Sets.
	labels := map[int]bool{}
	for _, l := range naive {
		labels[l] = true
	}
	if f.Sets() != len(labels) {
		t.Fatalf("Sets=%d, naive=%d", f.Sets(), len(labels))
	}
}

func TestReset(t *testing.T) {
	var f Forest
	f.Make()
	f.Make()
	f.Union(0, 1)
	f.Reset()
	if f.Len() != 0 || f.Sets() != 0 {
		t.Fatal("Reset did not clear")
	}
	a := f.Make()
	b := f.Make()
	if f.Same(a, b) {
		t.Fatal("sets joined after Reset")
	}
}

func TestForest32Basics(t *testing.T) {
	var f Forest32
	a, b, c := f.Make(), f.Make(), f.Make()
	if f.Len() != 3 || f.Sets() != 3 {
		t.Fatalf("Len=%d Sets=%d", f.Len(), f.Sets())
	}
	r := f.Union(a, b)
	if !f.Same(a, b) || f.Same(a, c) || f.Sets() != 2 {
		t.Fatal("union wrong")
	}
	if f.Find(a) != r || f.Find(b) != r {
		t.Fatal("find wrong")
	}
	// Union by size: the bigger class's root survives.
	if got := f.Union(c, a); got != r {
		t.Fatalf("size union kept %d, want %d", got, r)
	}
}

func TestForest32Grow(t *testing.T) {
	var f Forest32
	first := f.Grow(5)
	if first != 0 || f.Len() != 5 || f.Sets() != 5 {
		t.Fatalf("Grow: first=%d Len=%d Sets=%d", first, f.Len(), f.Sets())
	}
	f.Make()
	if f.Len() != 6 {
		t.Fatal("Make after Grow")
	}
}

func TestForest32Absorb(t *testing.T) {
	var a, b Forest32
	a.Make()
	a.Make()
	a.Union(0, 1)
	x, y, z := b.Make(), b.Make(), b.Make()
	b.Union(x, y)
	off := a.Absorb(&b)
	if off != 2 {
		t.Fatalf("offset = %d, want 2", off)
	}
	if a.Len() != 5 || a.Sets() != 3 {
		t.Fatalf("Len=%d Sets=%d after absorb", a.Len(), a.Sets())
	}
	if !a.Same(x+off, y+off) || a.Same(x+off, z+off) || a.Same(0, x+off) {
		t.Fatal("absorbed structure wrong")
	}
	// b untouched.
	if b.Len() != 3 || !b.Same(x, y) {
		t.Fatal("source forest modified")
	}
}
