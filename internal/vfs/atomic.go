package vfs

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// TmpPrefix marks in-flight atomic writes. Files carrying it are
// invisible to readers and reclaimable by SweepOrphans once their
// writer dies.
const TmpPrefix = ".tmp-"

// TempPattern returns the CreateTemp pattern for this process's atomic
// writes: ".tmp-<pid>-*". Stamping the pid into the name lets a
// recovering process distinguish an abandoned temp (writer dead — safe
// to delete) from a live in-flight write in a shared directory.
func TempPattern() string {
	return TmpPrefix + strconv.Itoa(os.Getpid()) + "-*"
}

// AtomicFile writes a file so that readers observe either the complete
// new contents or nothing, under any crash point:
//
//	af, err := vfs.NewAtomicFile(fsys, path)
//	… af.Write(…) …
//	err = af.Commit()   // fsync temp → close → rename → fsync dir
//	// or af.Abort()    // close → remove temp
//
// A kill -9 at any point leaves at worst an orphaned ".tmp-<pid>-*"
// file for SweepOrphans; the destination path is never partial.
type AtomicFile struct {
	fsys FS
	f    File
	dest string
	done bool
}

// NewAtomicFile starts an atomic write of dest, staging into a
// pid-stamped temporary in dest's directory.
func NewAtomicFile(fsys FS, dest string) (*AtomicFile, error) {
	f, err := fsys.CreateTemp(filepath.Dir(dest), TempPattern())
	if err != nil {
		return nil, err
	}
	return &AtomicFile{fsys: fsys, f: f, dest: dest}, nil
}

// Write appends to the staged temporary.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// TempName returns the path of the staged temporary.
func (a *AtomicFile) TempName() string { return a.f.Name() }

// Commit makes the staged contents the durable contents of the
// destination: fsync the temp, close it, rename over dest, fsync the
// directory so the rename itself survives a crash. On error the temp
// is removed; dest is untouched.
func (a *AtomicFile) Commit() error {
	if a.done {
		return fmt.Errorf("vfs: atomic file for %s already finished", a.dest)
	}
	a.done = true
	tmp := a.f.Name()
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		a.fsys.Remove(tmp)
		return err
	}
	if err := a.f.Close(); err != nil {
		a.fsys.Remove(tmp)
		return err
	}
	if err := a.fsys.Rename(tmp, a.dest); err != nil {
		a.fsys.Remove(tmp)
		return err
	}
	return a.fsys.SyncDir(filepath.Dir(a.dest))
}

// Abort abandons the write, removing the temporary. Safe to call after
// Commit (it is then a no-op), so "defer af.Abort()" is the idiom.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	a.fsys.Remove(a.f.Name())
}

// orphanAge is how old a temp file with an unparseable name must be
// before SweepOrphans reclaims it. Pid-stamped temps don't need the
// grace period: writer liveness is checked directly.
const orphanAge = time.Hour

// IsOrphanTemp reports whether the directory entry named name, with
// modification time mtime, is an abandoned atomic-write temporary as
// of now. Temps stamped with a live writer's pid — including our own —
// are in flight, not orphans.
func IsOrphanTemp(name string, mtime, now time.Time) bool {
	if !strings.HasPrefix(name, TmpPrefix) {
		return false
	}
	rest := name[len(TmpPrefix):]
	if i := strings.IndexByte(rest, '-'); i > 0 {
		if pid, err := strconv.Atoi(rest[:i]); err == nil && pid > 0 {
			return !pidAlive(pid)
		}
	}
	// Pre-pid naming or foreign temps: fall back to age.
	return now.Sub(mtime) > orphanAge
}

// SweepOrphans removes abandoned atomic-write temporaries from dir:
// pid-stamped temps whose writer is dead, and unparseable temps older
// than an hour. It returns how many were removed. Errors are
// best-effort — a temp that cannot be examined or removed is skipped,
// never escalated; recovery must not block on cleanup.
func SweepOrphans(fsys FS, dir string) int {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return 0
	}
	now := time.Now()
	swept := 0
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasPrefix(ent.Name(), TmpPrefix) {
			continue
		}
		var mtime time.Time
		if info, err := ent.Info(); err == nil {
			mtime = info.ModTime()
		} else {
			mtime = now // can't stat: only pid evidence can condemn it
		}
		if !IsOrphanTemp(ent.Name(), mtime, now) {
			continue
		}
		if fsys.Remove(filepath.Join(dir, ent.Name())) == nil {
			swept++
		}
	}
	return swept
}
