package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"syscall"
	"time"
)

// Op names one class of filesystem operation, for fault targeting and
// counting. File-level operations (read, write, sync, close) count
// against the FS that opened the file.
type Op uint8

const (
	OpOpen Op = iota
	OpCreate
	OpCreateTemp
	OpReadFile
	OpRename
	OpRemove
	OpStat
	OpReadDir
	OpMkdirAll
	OpChtimes
	OpSyncDir
	OpRead
	OpReadAt
	OpWrite
	OpSync
	OpClose
	numOps
)

var opNames = [numOps]string{
	"open", "create", "createtemp", "readfile", "rename", "remove",
	"stat", "readdir", "mkdirall", "chtimes", "syncdir",
	"read", "readat", "write", "sync", "close",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// mutating reports whether an op changes the filesystem — the set a
// power cut freezes. Close is deliberately not mutating: a frozen
// writer can still release its descriptors.
func (o Op) mutating() bool {
	switch o {
	case OpCreate, OpCreateTemp, OpRename, OpRemove, OpMkdirAll,
		OpChtimes, OpSyncDir, OpWrite, OpSync:
		return true
	}
	return false
}

// Injected faults carry these sentinels so tests can classify them.
var (
	// ErrInjected is the generic injected filesystem fault.
	ErrInjected = errors.New("vfs: injected fault")

	// ErrPowerCut marks operations refused after PowerCut: the disk is
	// gone; nothing written after this point exists.
	ErrPowerCut = errors.New("vfs: power cut: writes frozen")

	// ErrNoSpace is an injected full-disk error. It wraps ENOSPC, so
	// errors.Is(err, syscall.ENOSPC) holds — the same check production
	// code uses for the real thing.
	ErrNoSpace = fmt.Errorf("vfs: injected full disk: %w", syscall.ENOSPC)
)

// IsNoSpace reports whether err is a full-disk condition (real or
// injected).
func IsNoSpace(err error) bool { return errors.Is(err, syscall.ENOSPC) }

// FaultFS wraps an FS with deterministic fault injection. Arm one or
// more faults, run the code under test, inspect the counters:
//
//	ffs := vfs.NewFault(vfs.OS)
//	ffs.FailOnce(3, vfs.ErrNoSpace)  // the 3rd op from now fails
//	ffs.FailFrom(1, vfs.ErrInjected) // every op from the next on fails
//	ffs.FailOps(vfs.OpSync)          // …but only syncs are counted/failed
//	ffs.TornWrite(10)                // a failing write persists 10 bytes first
//	ffs.LieSync(true)                // fsync reports success without syncing
//	ffs.PowerCut()                   // all further mutating ops fail
//
// Every method is safe for concurrent use. Fault checks count ops in
// arrival order, so a single-goroutine caller sees fully deterministic
// firing.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	n        int64 // ops counted so far (post-filter)
	counts   [numOps]int64
	failAt   int64 // 1-based op index (counting from arming) that fails
	failFrom bool  // failAt fails every op from index on, not just one
	failErr  error
	armed    int64       // op count when the fault was armed
	only     map[Op]bool // nil: every op counts
	tornK    int         // -1: fail cleanly; >=0: failing writes persist K bytes
	lieSync  bool
	lies     int64
	power    bool
}

// NewFault wraps inner (usually OS) with fault injection. With no
// faults armed it is transparent but still counts operations.
func NewFault(inner FS) *FaultFS {
	return &FaultFS{inner: inner, tornK: -1}
}

// FailOnce arms a single-shot fault: the nth counted operation from
// now (1-based) returns err. Passing err == nil clears the fault.
func (f *FaultFS) FailOnce(n int64, err error) {
	f.mu.Lock()
	f.failAt, f.failErr, f.failFrom, f.armed = n, err, false, f.n
	f.mu.Unlock()
}

// FailFrom arms a persistent fault: every counted operation from the
// nth on (1-based, counted from now) returns err.
func (f *FaultFS) FailFrom(n int64, err error) {
	f.mu.Lock()
	f.failAt, f.failErr, f.failFrom, f.armed = n, err, true, f.n
	f.mu.Unlock()
}

// FailOps restricts counting (and so failing) to the given op classes;
// with none, every op counts again.
func (f *FaultFS) FailOps(ops ...Op) {
	f.mu.Lock()
	if len(ops) == 0 {
		f.only = nil
	} else {
		f.only = make(map[Op]bool, len(ops))
		for _, o := range ops {
			f.only[o] = true
		}
	}
	f.mu.Unlock()
}

// TornWrite makes a failing write persist exactly k bytes of its
// payload before reporting the armed error — the on-disk state of a
// write interrupted mid-stream. k < 0 restores clean failure.
func (f *FaultFS) TornWrite(k int) {
	f.mu.Lock()
	f.tornK = k
	f.mu.Unlock()
}

// LieSync makes Sync (and SyncDir) report success without syncing —
// the firmware-lies failure mode. Lies are counted.
func (f *FaultFS) LieSync(on bool) {
	f.mu.Lock()
	f.lieSync = on
	f.mu.Unlock()
}

// SyncLies reports how many syncs were skipped under LieSync.
func (f *FaultFS) SyncLies() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lies
}

// PowerCut freezes the filesystem: every further mutating operation
// fails with ErrPowerCut. Reads keep working — the disk's existing
// contents survive; nothing new lands.
func (f *FaultFS) PowerCut() {
	f.mu.Lock()
	f.power = true
	f.mu.Unlock()
}

// Restore clears every armed fault (but not the op counters).
func (f *FaultFS) Restore() {
	f.mu.Lock()
	f.failAt, f.failErr, f.failFrom = 0, nil, false
	f.only, f.tornK, f.lieSync, f.power = nil, -1, false, false
	f.mu.Unlock()
}

// OpCount reports the operations counted so far (after FailOps
// filtering).
func (f *FaultFS) OpCount() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Count reports how many operations of one class went through.
func (f *FaultFS) Count(op Op) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// check records one op and decides its fate: nil (proceed), or the
// injected error. For OpWrite it also returns how many payload bytes
// to persist before failing (-1: none).
func (f *FaultFS) check(op Op) (error, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	if f.power && op.mutating() {
		return ErrPowerCut, -1
	}
	if op == OpSync || op == OpSyncDir {
		if f.lieSync {
			f.lies++
			return errSyncLied, -1
		}
	}
	if f.only != nil && !f.only[op] {
		return nil, -1
	}
	f.n++
	if f.failErr == nil {
		return nil, -1
	}
	idx := f.n - f.armed // 1-based index since arming
	fire := false
	if f.failFrom {
		fire = idx >= f.failAt
	} else {
		fire = idx == f.failAt
	}
	if !fire {
		return nil, -1
	}
	if op == OpWrite {
		return f.failErr, f.tornK
	}
	return f.failErr, -1
}

// errSyncLied is internal: check returns it to tell the wrapper to
// skip the real sync and report success.
var errSyncLied = errors.New("vfs: sync lied")

func (f *FaultFS) Open(name string) (File, error) {
	if err, _ := f.check(OpOpen); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Create(name string) (File, error) {
	if err, _ := f.check(OpCreate); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err, _ := f.check(OpCreateTemp); err != nil {
		return nil, err
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err, _ := f.check(OpReadFile); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err, _ := f.check(OpRename); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err, _ := f.check(OpRemove); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if err, _ := f.check(OpStat); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err, _ := f.check(OpReadDir); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if err, _ := f.check(OpMkdirAll); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) Chtimes(name string, atime, mtime time.Time) error {
	if err, _ := f.check(OpChtimes); err != nil {
		return err
	}
	return f.inner.Chtimes(name, atime, mtime)
}

func (f *FaultFS) SyncDir(dir string) error {
	err, _ := f.check(OpSyncDir)
	if err == errSyncLied {
		return nil
	}
	if err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile threads file-level operations back through the FaultFS.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Name() string               { return f.inner.Name() }
func (f *faultFile) Stat() (fs.FileInfo, error) { return f.inner.Stat() }

func (f *faultFile) Read(p []byte) (int, error) {
	if err, _ := f.fs.check(OpRead); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err, _ := f.fs.check(OpReadAt); err != nil {
		return 0, err
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) Write(p []byte) (int, error) {
	err, torn := f.fs.check(OpWrite)
	if err != nil {
		// A torn write persists a prefix before dying — the state a
		// crash mid-write leaves on disk.
		if torn >= 0 {
			if torn > len(p) {
				torn = len(p)
			}
			n, werr := f.inner.Write(p[:torn])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	err, _ := f.fs.check(OpSync)
	if err == errSyncLied {
		return nil
	}
	if err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	if err, _ := f.fs.check(OpClose); err != nil {
		return err
	}
	return f.inner.Close()
}

var (
	_ FS   = (*FaultFS)(nil)
	_ File = (*faultFile)(nil)
)
