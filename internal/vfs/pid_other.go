//go:build !unix

package vfs

// pidAlive cannot be answered portably off unix; report alive so
// sweeping never deletes a live writer's temp. Age-based reclamation
// still collects genuinely stale files.
func pidAlive(pid int) bool { return true }
