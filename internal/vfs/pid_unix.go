//go:build unix

package vfs

import (
	"errors"
	"syscall"
)

// pidAlive reports whether a process with the given pid exists.
// Signal 0 performs the existence check without delivering anything;
// EPERM means the process exists but belongs to someone else — alive.
func pidAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	if err == nil {
		return true
	}
	return errors.Is(err, syscall.EPERM)
}
