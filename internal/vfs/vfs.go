// Package vfs is the filesystem seam under ACE's persistent tiers
// (internal/store, the tile pack path, the serve result cache). The
// production implementation, OS, is a thin veneer over package os; the
// test implementation, FaultFS, injects the failure modes that
// actually kill long-lived caches — a write torn mid-entry, an fsync
// that fails (or lies), a full disk, a power cut — so crash
// consistency and fail-open degradation are testable in-process,
// deterministically, without a real crash.
//
// The package also owns the two crash-consistency primitives every
// tier shares:
//
//   - AtomicFile: write-to-temp, fsync, rename-into-place, fsync the
//     directory. A reader never observes a partial file under any
//     crash point; the worst outcome of a kill -9 is an orphaned
//     temporary.
//   - Orphan sweeping: temporaries are named ".tmp-<pid>-…", so a
//     recovering process can tell an abandoned temp (writer dead) from
//     a live in-flight write (writer alive) and delete exactly the
//     former.
package vfs

import (
	"io"
	"io/fs"
	"os"
	"time"
)

// FS is the set of filesystem operations the persistent tiers use.
// Implementations must be safe for concurrent use.
type FS interface {
	// Open opens the named file for reading.
	Open(name string) (File, error)

	// Create truncates or creates the named file for writing.
	Create(name string) (File, error)

	// CreateTemp creates a new unique file in dir; pattern follows
	// os.CreateTemp ("*" replaced by a random string).
	CreateTemp(dir, pattern string) (File, error)

	// ReadFile reads the whole named file.
	ReadFile(name string) ([]byte, error)

	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error

	// Remove deletes the named file.
	Remove(name string) error

	// Stat describes the named file.
	Stat(name string) (fs.FileInfo, error)

	// ReadDir lists the named directory.
	ReadDir(name string) ([]fs.DirEntry, error)

	// MkdirAll creates the named directory and any missing parents.
	MkdirAll(path string, perm fs.FileMode) error

	// Chtimes sets the named file's access and modification times.
	Chtimes(name string, atime, mtime time.Time) error

	// SyncDir fsyncs the named directory, making a preceding rename
	// durable. Filesystems that cannot sync directories report their
	// error; callers on the fail-open paths may ignore it.
	SyncDir(dir string) error
}

// File is an open file on an FS.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer

	// Name returns the path the file was opened with.
	Name() string

	// Stat describes the open file.
	Stat() (fs.FileInfo, error)

	// Sync flushes the file's contents to stable storage.
	Sync() error
}

// OS is the production FS: package os, unmodified.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error)   { return wrapOS(os.Open(name)) }
func (osFS) Create(name string) (File, error) { return wrapOS(os.Create(name)) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return wrapOS(os.CreateTemp(dir, pattern))
}
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

func wrapOS(f *os.File, err error) (File, error) {
	if err != nil {
		return nil, err
	}
	return f, nil
}
