package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a.txt")
	f, err := OS.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := OS.ReadFile(p)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	r, err := OS.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := r.ReadAt(buf, 2); err != nil || string(buf) != "llo" {
		t.Fatalf("ReadAt = %q, %v", buf, err)
	}
	r.Close()
}

func TestAtomicFileCommit(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "out.bin")
	af, err := NewAtomicFile(OS, p)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(af.TempName()) != dir {
		t.Fatalf("temp %q not staged in %q", af.TempName(), dir)
	}
	if _, err := af.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Before commit the destination must not exist.
	if _, err := OS.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("dest exists before commit: %v", err)
	}
	if err := af.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := OS.ReadFile(p)
	if err != nil || string(got) != "payload" {
		t.Fatalf("after commit: %q, %v", got, err)
	}
	// Temp is gone; Abort after Commit is a no-op.
	if _, err := OS.Stat(af.TempName()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp survives commit: %v", err)
	}
	af.Abort()
	if _, err := OS.ReadFile(p); err != nil {
		t.Fatalf("abort-after-commit clobbered dest: %v", err)
	}
}

func TestAtomicFileAbort(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "out.bin")
	af, err := NewAtomicFile(OS, p)
	if err != nil {
		t.Fatal(err)
	}
	af.Write([]byte("junk"))
	af.Abort()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("abort left %d entries", len(ents))
	}
}

func TestAtomicFileCommitFaultsLeaveNoDest(t *testing.T) {
	// Whichever step of Commit fails, the destination must not appear
	// and the temp must not linger.
	for _, op := range []Op{OpSync, OpClose, OpRename} {
		t.Run(op.String(), func(t *testing.T) {
			dir := t.TempDir()
			p := filepath.Join(dir, "out.bin")
			ffs := NewFault(OS)
			af, err := NewAtomicFile(ffs, p)
			if err != nil {
				t.Fatal(err)
			}
			af.Write([]byte("payload"))
			ffs.FailOps(op)
			ffs.FailOnce(1, ErrInjected)
			if err := af.Commit(); !errors.Is(err, ErrInjected) {
				t.Fatalf("Commit = %v, want injected", err)
			}
			ffs.Restore()
			if _, err := OS.Stat(p); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("dest appeared despite failed commit: %v", err)
			}
			ents, _ := os.ReadDir(dir)
			if len(ents) != 0 {
				t.Fatalf("failed commit left %d entries", len(ents))
			}
		})
	}
}

func TestFaultFailOnce(t *testing.T) {
	ffs := NewFault(OS)
	dir := t.TempDir()
	ffs.FailOps(OpCreate)
	ffs.FailOnce(2, ErrInjected)
	if _, err := ffs.Create(filepath.Join(dir, "a")); err != nil {
		t.Fatalf("op 1 failed early: %v", err)
	}
	if _, err := ffs.Create(filepath.Join(dir, "b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 2 = %v, want injected", err)
	}
	if _, err := ffs.Create(filepath.Join(dir, "c")); err != nil {
		t.Fatalf("op 3 failed after single-shot: %v", err)
	}
	if got := ffs.Count(OpCreate); got != 3 {
		t.Fatalf("Count(OpCreate) = %d", got)
	}
}

func TestFaultFailFrom(t *testing.T) {
	ffs := NewFault(OS)
	dir := t.TempDir()
	ffs.FailOps(OpStat)
	ffs.FailFrom(2, ErrInjected)
	if _, err := ffs.Stat(dir); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ffs.Stat(dir); !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d = %v, want injected", i+2, err)
		}
	}
}

func TestFaultTornWrite(t *testing.T) {
	ffs := NewFault(OS)
	dir := t.TempDir()
	p := filepath.Join(dir, "torn")
	f, err := ffs.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	ffs.FailOps(OpWrite)
	ffs.FailOnce(1, ErrInjected)
	ffs.TornWrite(3)
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) || n != 3 {
		t.Fatalf("torn write = %d, %v", n, err)
	}
	ffs.Restore()
	f.Close()
	got, _ := os.ReadFile(p)
	if string(got) != "abc" {
		t.Fatalf("on-disk after torn write: %q", got)
	}
}

func TestFaultNoSpace(t *testing.T) {
	if !IsNoSpace(ErrNoSpace) {
		t.Fatal("ErrNoSpace not classified as no-space")
	}
	if !errors.Is(ErrNoSpace, syscall.ENOSPC) {
		t.Fatal("ErrNoSpace does not wrap ENOSPC")
	}
	if IsNoSpace(ErrInjected) {
		t.Fatal("ErrInjected misclassified as no-space")
	}
}

func TestFaultLieSync(t *testing.T) {
	ffs := NewFault(OS)
	dir := t.TempDir()
	f, err := ffs.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	ffs.LieSync(true)
	if err := f.Sync(); err != nil {
		t.Fatalf("lying sync reported %v", err)
	}
	if err := ffs.SyncDir(dir); err != nil {
		t.Fatalf("lying syncdir reported %v", err)
	}
	if got := ffs.SyncLies(); got != 2 {
		t.Fatalf("SyncLies = %d", got)
	}
	f.Close()
}

func TestFaultPowerCut(t *testing.T) {
	ffs := NewFault(OS)
	dir := t.TempDir()
	p := filepath.Join(dir, "pre")
	if err := os.WriteFile(p, []byte("pre"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := ffs.Create(filepath.Join(dir, "mid"))
	if err != nil {
		t.Fatal(err)
	}
	ffs.PowerCut()
	// Every mutating op is frozen…
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("write after cut = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("sync after cut = %v", err)
	}
	if _, err := ffs.Create(filepath.Join(dir, "post")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("create after cut = %v", err)
	}
	if err := ffs.Rename(p, p+"2"); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("rename after cut = %v", err)
	}
	if err := ffs.Remove(p); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("remove after cut = %v", err)
	}
	// …but reads and close still work.
	if err := f.Close(); err != nil {
		t.Fatalf("close after cut = %v", err)
	}
	got, err := ffs.ReadFile(p)
	if err != nil || string(got) != "pre" {
		t.Fatalf("read after cut = %q, %v", got, err)
	}
	ffs.Restore()
	if _, err := ffs.Create(filepath.Join(dir, "restored")); err != nil {
		t.Fatalf("create after restore = %v", err)
	}
}

func TestIsOrphanTemp(t *testing.T) {
	now := time.Now()
	self := TmpPrefix + strconv.Itoa(os.Getpid()) + "-abc"
	cases := []struct {
		name  string
		mtime time.Time
		want  bool
	}{
		{"entry.e", now, false},                                // not a temp
		{self, now.Add(-24 * time.Hour), false},                // own pid: in flight even if old
		{TmpPrefix + "1-abc", now, false},                      // pid 1 (init): alive
		{TmpPrefix + "999999999-abc", now, true},               // beyond pid_max: dead
		{TmpPrefix + "garbage", now, false},                    // unparseable, fresh
		{TmpPrefix + "garbage", now.Add(-2 * time.Hour), true}, // unparseable, stale
	}
	for _, c := range cases {
		if got := IsOrphanTemp(c.name, c.mtime, now); got != c.want {
			t.Errorf("IsOrphanTemp(%q, age %v) = %v, want %v", c.name, now.Sub(c.mtime), got, c.want)
		}
	}
}

func TestSweepOrphans(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, age time.Duration) {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if age > 0 {
			old := time.Now().Add(-age)
			os.Chtimes(p, old, old)
		}
	}
	write("keep.e", 0)                                    // real entry
	write(TmpPrefix+strconv.Itoa(os.Getpid())+"-live", 0) // our own in-flight write
	write(TmpPrefix+"999999999-dead", 0)                  // dead writer
	write(TmpPrefix+"old", 2*time.Hour)                   // stale unparseable
	write(TmpPrefix+"fresh", 0)                           // fresh unparseable

	if got := SweepOrphans(OS, dir); got != 2 {
		t.Fatalf("swept %d, want 2", got)
	}
	for _, want := range []string{"keep.e", TmpPrefix + strconv.Itoa(os.Getpid()) + "-live", TmpPrefix + "fresh"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("survivor %q gone: %v", want, err)
		}
	}
	for _, gone := range []string{TmpPrefix + "999999999-dead", TmpPrefix + "old"} {
		if _, err := os.Stat(filepath.Join(dir, gone)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("orphan %q survived: %v", gone, err)
		}
	}
}

func TestSweepOrphansMissingDir(t *testing.T) {
	if got := SweepOrphans(OS, filepath.Join(t.TempDir(), "nope")); got != 0 {
		t.Fatalf("swept %d from missing dir", got)
	}
}
