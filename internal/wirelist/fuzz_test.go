package wirelist

import "testing"

// FuzzParseFlat hammers the flat wirelist parser: never panic, and
// every accepted netlist must pass validation well enough to reformat.
func FuzzParseFlat(f *testing.F) {
	f.Add(`(DefPart "x" (Part nEnh (T Gate N1) (T Source N2) (T Drain N3) (Channel (Length 2) (Width 4))) (Net N1 IN))`)
	f.Add(`(DefPart "y" (Local N0 N1))`)
	f.Add(`(DefPart "z" (DefPart nDep (Export S G D)) (Net N0 VDD (Location 1 2)))`)
	f.Add(`(DefPart "g" (Net N0 ( CIF " L NM; B L4800 W800 C-200 3400; L ND; B L400 W200 C-200 2900; ")))`)
	f.Add(`(DefPart "h" (Net N1 ( CIF " L NX; B L1 W1 C0 0; L QQ; B L2 W2 C1 1; ")))`)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		nl, err := ParseString(src)
		if err != nil {
			return
		}
		// Anything accepted must be re-writable and re-parseable.
		text := Format(nl, Options{})
		if _, err := ParseString(text); err != nil {
			t.Fatalf("reformat unparseable: %v\noriginal: %q\nrewritten: %q", err, src, text)
		}
	})
}
