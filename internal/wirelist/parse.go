package wirelist

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/tech"
)

// Parse reads a flat wirelist (as produced by Write) back into a
// netlist. Geometry clauses are parsed when present.
func Parse(r io.Reader) (*netlist.Netlist, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseString(string(data))
}

// ParseString parses a flat wirelist from text.
func ParseString(src string) (*netlist.Netlist, error) {
	sx, err := parseSexpr(src)
	if err != nil {
		return nil, err
	}
	if len(sx) != 1 {
		return nil, fmt.Errorf("wirelist: expected one top-level DefPart, found %d", len(sx))
	}
	top := sx[0]
	if len(top.List) < 2 || top.List[0].Atom != "DefPart" {
		return nil, fmt.Errorf("wirelist: top form is not a named DefPart")
	}
	nl := &netlist.Netlist{Name: strings.Trim(top.List[1].Atom, `"`)}

	netIdx := map[string]int{}
	netOf := func(name string) int {
		if i, ok := netIdx[name]; ok {
			return i
		}
		i := len(nl.Nets)
		netIdx[name] = i
		nl.Nets = append(nl.Nets, netlist.Net{})
		return i
	}

	for _, form := range top.List[2:] {
		if len(form.List) == 0 {
			continue
		}
		switch form.List[0].Atom {
		case "DefPart":
			// Primitive declarations (nEnh etc.): nothing to record.
		case "Part":
			dev, err := parseDevice(form, netOf)
			if err != nil {
				return nil, err
			}
			nl.Devices = append(nl.Devices, dev)
		case "Net":
			if err := parseNet(form, nl, netOf); err != nil {
				return nil, err
			}
		case "Local":
			// Scope information; flat netlists need nothing from it.
		default:
			return nil, fmt.Errorf("wirelist: unknown form %q", form.List[0].Atom)
		}
	}
	return nl, nil
}

func parseDevice(form sexpr, netOf func(string) int) (netlist.Device, error) {
	var d netlist.Device
	if len(form.List) < 2 {
		return d, fmt.Errorf("wirelist: malformed Part")
	}
	typ, ok := deviceTypeByName(form.List[1].Atom)
	if !ok {
		return d, fmt.Errorf("wirelist: unknown part type %q", form.List[1].Atom)
	}
	d.Type = typ
	gate, source, drain := -1, -1, -1
	for _, cl := range form.List[2:] {
		if len(cl.List) == 0 {
			continue
		}
		switch cl.List[0].Atom {
		case "Location":
			x, y, err := twoInts(cl, 1)
			if err != nil {
				return d, err
			}
			d.Location = geom.Pt(x, y)
		case "T":
			if len(cl.List) != 3 {
				return d, fmt.Errorf("wirelist: malformed T clause")
			}
			n := netOf(cl.List[2].Atom)
			switch cl.List[1].Atom {
			case "Gate":
				gate = n
			case "Source":
				source = n
			case "Drain":
				drain = n
			default:
				return d, fmt.Errorf("wirelist: unknown terminal %q", cl.List[1].Atom)
			}
		case "Channel":
			for _, ch := range cl.List[1:] {
				if len(ch.List) == 2 {
					v, err := strconv.ParseInt(ch.List[1].Atom, 10, 64)
					if err != nil {
						continue
					}
					switch ch.List[0].Atom {
					case "Length":
						d.Length = v
					case "Width":
						d.Width = v
					}
				}
			}
		case "InstName":
			// Cosmetic.
		}
	}
	if gate < 0 || source < 0 || drain < 0 {
		return d, fmt.Errorf("wirelist: device missing terminals")
	}
	d.Gate, d.Source, d.Drain = gate, source, drain
	d.Area = d.Length * d.Width
	d.Terminals = []netlist.Terminal{{Net: source}, {Net: drain}}
	return d, nil
}

func parseNet(form sexpr, nl *netlist.Netlist, netOf func(string) int) error {
	if len(form.List) < 2 {
		return fmt.Errorf("wirelist: malformed Net")
	}
	idx := netOf(form.List[1].Atom)
	for _, cl := range form.List[2:] {
		if cl.Atom != "" {
			nl.Nets[idx].Names = append(nl.Nets[idx].Names, cl.Atom)
			continue
		}
		if len(cl.List) >= 1 && cl.List[0].Atom == "Location" {
			x, y, err := twoInts(cl, 1)
			if err != nil {
				return err
			}
			nl.Nets[idx].Location = geom.Pt(x, y)
		}
		if len(cl.List) == 2 && cl.List[0].Atom == "CIF" {
			g, err := parseGeometryClause(cl.List[1].Atom)
			if err != nil {
				return fmt.Errorf("wirelist: net %s: %v", form.List[1].Atom, err)
			}
			nl.Nets[idx].Geometry = append(nl.Nets[idx].Geometry, g...)
		}
	}
	return nil
}

// parseGeometryClause reads the quoted geometry string of a ( CIF "…")
// clause: a sequence of "L <layer>;" and "B L<len> W<wid> C<cx> <cy>;"
// commands — the dialect of Figure 3-4. It lets the R/C post-processor
// work from the wirelist file alone, exactly the flow ACE §2 intends
// ("this information is enough for a post-processing program to
// compute capacitances and resistances").
func parseGeometryClause(quoted string) ([]netlist.LayerRect, error) {
	s := strings.Trim(quoted, `"`)
	var out []netlist.LayerRect
	layer := tech.Layer(-1)
	for _, cmd := range strings.Split(s, ";") {
		fields := strings.Fields(cmd)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "L":
			if len(fields) != 2 {
				return nil, fmt.Errorf("malformed layer command %q", cmd)
			}
			l, ok := tech.LayerByCIFName(fields[1])
			if !ok {
				layer = -1 // unknown layers are skipped
				continue
			}
			layer = l
		case "B":
			if len(fields) != 5 || !strings.HasPrefix(fields[1], "L") ||
				!strings.HasPrefix(fields[2], "W") || !strings.HasPrefix(fields[3], "C") {
				return nil, fmt.Errorf("malformed box command %q", cmd)
			}
			length, err1 := strconv.ParseInt(fields[1][1:], 10, 64)
			width, err2 := strconv.ParseInt(fields[2][1:], 10, 64)
			cx, err3 := strconv.ParseInt(fields[3][1:], 10, 64)
			cy, err4 := strconv.ParseInt(fields[4], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, fmt.Errorf("bad numbers in %q", cmd)
			}
			if layer < 0 {
				continue
			}
			out = append(out, netlist.LayerRect{
				Layer: layer,
				Rect:  geom.RectCWH(length, width, geom.Pt(cx, cy)),
			})
		default:
			return nil, fmt.Errorf("unknown geometry command %q", cmd)
		}
	}
	return out, nil
}

func twoInts(s sexpr, at int) (int64, int64, error) {
	if len(s.List) < at+2 {
		return 0, 0, fmt.Errorf("wirelist: expected two integers")
	}
	x, err := strconv.ParseInt(s.List[at].Atom, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("wirelist: bad integer %q", s.List[at].Atom)
	}
	y, err := strconv.ParseInt(s.List[at+1].Atom, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("wirelist: bad integer %q", s.List[at+1].Atom)
	}
	return x, y, nil
}

// Sexpr is either an atom (Atom != "") or a list — the wirelist
// format's LISP-like building block. Exported so the hierarchical
// wirelist reader (internal/hext) shares the tokenizer.
type Sexpr struct {
	Atom string
	List []Sexpr
}

// ParseSexprs reads a sequence of s-expressions from wirelist text.
func ParseSexprs(src string) ([]Sexpr, error) { return parseSexpr(src) }

// sexpr aliases the exported form; the flat parser predates it.
type sexpr = Sexpr

func parseSexpr(src string) ([]sexpr, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	var stack [][]sexpr
	cur := []sexpr{}
	for _, t := range toks {
		switch t {
		case "(":
			stack = append(stack, cur)
			cur = []sexpr{}
		case ")":
			if len(stack) == 0 {
				return nil, fmt.Errorf("wirelist: unbalanced ')'")
			}
			parent := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			parent = append(parent, sexpr{List: cur})
			cur = parent
		default:
			cur = append(cur, sexpr{Atom: t})
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("wirelist: unbalanced '('")
	}
	return cur, nil
}

func tokenize(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("wirelist: unterminated string")
			}
			toks = append(toks, src[i:j+1])
			i = j + 1
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		default:
			j := i
			for j < len(src) && !strings.ContainsRune("() \t\n\r\"", rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks, nil
}
