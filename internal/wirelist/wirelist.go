// Package wirelist reads and writes the CMU hierarchical wirelist
// format of Frank, Ebeling and Sproull — the LISP-like syntax of
// Figures 3-4 and 2-2 ("easy to parse and extend").
//
// The flat form (this package's Write/Parse) carries a DefPart
// containing Part statements for each transistor and Net statements
// for each net. The hierarchical form (written by internal/hext)
// nests DefParts. The original V085 format specification is lost;
// token spellings follow the paper's figures (see DESIGN.md §6).
package wirelist

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"ace/internal/netlist"
	"ace/internal/tech"
)

// Options configures wirelist output.
type Options struct {
	// Geometry includes the CIF geometry of every net and device
	// (ACE's user option; suppressed under normal operation).
	Geometry bool
}

// Write emits a flat netlist in the Figure 3-4 style.
func Write(w io.Writer, nl *netlist.Netlist, opt Options) error {
	ew := &errWriter{w: w}
	name := nl.Name
	if name == "" {
		name = "chip"
	}
	ew.printf("(DefPart %q\n", name)
	ew.printf("(DefPart nEnh (Export Source Gate Drain))\n")
	ew.printf("(DefPart nDep (Export Source Gate Drain))\n")
	ew.printf("(DefPart nCap (Export Source Gate Drain))\n")

	netName := func(i int) string { return fmt.Sprintf("N%d", i) }

	for i, d := range nl.Devices {
		ew.printf("(Part %s (InstName D%d) (Location %d %d)\n",
			d.Type, i, d.Location.X, d.Location.Y)
		ew.printf(" (T Gate %s) (T Source %s) (T Drain %s)\n",
			netName(d.Gate), netName(d.Source), netName(d.Drain))
		ew.printf(" (Channel (Length %d) (Width %d)", d.Length, d.Width)
		if opt.Geometry && len(d.Geometry) > 0 {
			ew.printf("\n  ( CIF \"")
			for _, r := range d.Geometry {
				ew.printf(" L NX; B L%d W%d C%d %d;", r.W(), r.H(), r.Center().X, r.Center().Y)
			}
			ew.printf(" \")")
		}
		ew.printf("))\n")
	}

	for i := range nl.Nets {
		n := &nl.Nets[i]
		ew.printf("(Net %s", netName(i))
		for _, nm := range n.Names {
			ew.printf(" %s", nm)
		}
		ew.printf(" (Location %d %d)", n.Location.X, n.Location.Y)
		if opt.Geometry && len(n.Geometry) > 0 {
			ew.printf("\n ( CIF \"")
			for _, g := range n.Geometry {
				r := g.Rect
				ew.printf(" L %s; B L%d W%d C%d %d;",
					g.Layer.CIFName(), r.W(), r.H(), r.Center().X, r.Center().Y)
			}
			ew.printf(" \")")
		}
		ew.printf(")\n")
	}

	ew.printf("(Local")
	for i := range nl.Nets {
		ew.printf(" %s", netName(i))
	}
	ew.printf(" ))\n")
	return ew.err
}

// Format renders a netlist to a string.
func Format(nl *netlist.Netlist, opt Options) string {
	var sb strings.Builder
	_ = Write(&sb, nl, opt)
	return sb.String()
}

// AppendTo renders a netlist onto dst, reusing its capacity — the
// warm-loop form of Format: an extract.Engine output buffer (or any
// caller-kept slice) absorbs the rendering instead of a fresh string
// per run. The bytes are identical to Write's.
func AppendTo(dst []byte, nl *netlist.Netlist, opt Options) ([]byte, error) {
	buf := bytes.NewBuffer(dst)
	err := Write(buf, nl, opt)
	return buf.Bytes(), err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// deviceTypeByName maps the wirelist part names back to device types.
func deviceTypeByName(s string) (tech.DeviceType, bool) {
	switch s {
	case "nEnh":
		return tech.Enhancement, true
	case "nDep":
		return tech.Depletion, true
	case "nCap":
		return tech.Capacitor, true
	}
	return 0, false
}
