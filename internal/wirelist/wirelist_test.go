package wirelist

import (
	"strings"
	"testing"

	"ace/internal/extract"
	"ace/internal/gen"
	"ace/internal/geom"
	"ace/internal/netlist"
	"ace/internal/tech"
)

func extractInverter(t *testing.T, keepGeom bool) *netlist.Netlist {
	t.Helper()
	res, err := extract.File(gen.Inverter(), extract.Options{KeepGeometry: keepGeom})
	if err != nil {
		t.Fatal(err)
	}
	res.Netlist.Name = "inverter.cif"
	return res.Netlist
}

func TestWriteStructure(t *testing.T) {
	nl := extractInverter(t, false)
	text := Format(nl, Options{})
	for _, want := range []string{
		`(DefPart "inverter.cif"`,
		"(DefPart nEnh (Export Source Gate Drain))",
		"(DefPart nDep (Export Source Gate Drain))",
		"(Part nEnh",
		"(Part nDep",
		"(Channel (Length 400) (Width 2800)",
		"(Channel (Length 1400) (Width 400)",
		"VDD",
		"GND",
		"INP",
		"OUT",
		"(Local",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\n%s", want, text)
		}
	}
	// No geometry clauses without the option ("Under normal operation
	// this is suppressed").
	if strings.Contains(text, "CIF") {
		t.Error("geometry emitted without the option")
	}
}

func TestWriteGeometry(t *testing.T) {
	nl := extractInverter(t, true)
	text := Format(nl, Options{Geometry: true})
	if !strings.Contains(text, "L NX; B L400 W1200 C-600 -1400;") {
		t.Errorf("enh channel geometry missing (Figure 3-4 form)\n%s", text)
	}
	if !strings.Contains(text, "L NM;") || !strings.Contains(text, "L ND;") {
		t.Error("net geometry missing")
	}
}

func TestRoundTrip(t *testing.T) {
	nl := extractInverter(t, false)
	text := Format(nl, Options{})
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	eq, reason := netlist.Equivalent(nl, back)
	if !eq {
		t.Fatalf("round trip not equivalent: %s", reason)
	}
	// Names and locations must also survive.
	for _, nm := range []string{"VDD", "GND", "INP", "OUT"} {
		i, ok := back.NetByName(nm)
		if !ok {
			t.Fatalf("net %s lost", nm)
		}
		j, _ := nl.NetByName(nm)
		if back.Nets[i].Location != nl.Nets[j].Location {
			t.Errorf("net %s location %v vs %v", nm, back.Nets[i].Location, nl.Nets[j].Location)
		}
	}
	if back.Name != "inverter.cif" {
		t.Errorf("name %q", back.Name)
	}
}

func TestRoundTripWithGeometry(t *testing.T) {
	nl := extractInverter(t, true)
	text := Format(nl, Options{Geometry: true})
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if eq, reason := netlist.Equivalent(nl, back); !eq {
		t.Fatalf("not equivalent: %s", reason)
	}
	// Net geometry must survive the text exactly (per layer, as
	// regions) — the R/C post-processor depends on it.
	for i := range nl.Nets {
		name := nl.Nets[i].Name(i)
		j, ok := back.NetByName(name)
		if !ok {
			t.Fatalf("net %s lost", name)
		}
		for l := tech.Layer(0); int(l) < tech.NumLayers; l++ {
			var a, b []geom.Rect
			for _, g := range nl.Nets[i].Geometry {
				if g.Layer == l {
					a = append(a, g.Rect)
				}
			}
			for _, g := range back.Nets[j].Geometry {
				if g.Layer == l {
					b = append(b, g.Rect)
				}
			}
			if !geom.SameRegion(a, b) {
				t.Fatalf("net %s layer %v geometry changed:\n%v\nvs\n%v", name, l, a, b)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unbalanced open":    `(DefPart "x"`,
		"unbalanced close":   `(DefPart "x"))`,
		"no toplevel":        ``,
		"two toplevel":       `(DefPart "a")(DefPart "b")`,
		"not defpart":        `(Foo "x")`,
		"unknown form":       `(DefPart "x" (Bogus 1))`,
		"bad part type":      `(DefPart "x" (Part nXyz (T Gate N1) (T Source N2) (T Drain N3)))`,
		"missing terminals":  `(DefPart "x" (Part nEnh (T Gate N1)))`,
		"unterminated quote": `(DefPart "x`,
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseMinimal(t *testing.T) {
	src := `
(DefPart "mini"
(DefPart nEnh (Export Source Gate Drain))
(Part nEnh (InstName D0) (Location 10 20)
 (T Gate NA) (T Source NB) (T Drain NC)
 (Channel (Length 200) (Width 400)))
(Net NA IN (Location 0 0))
(Net NB OUT (Location 1 1))
(Net NC GND (Location 2 2))
(Local NA NB NC ))
`
	nl, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Devices) != 1 || len(nl.Nets) != 3 {
		t.Fatalf("parsed %d devices %d nets", len(nl.Devices), len(nl.Nets))
	}
	d := nl.Devices[0]
	if d.Length != 200 || d.Width != 400 {
		t.Fatalf("L/W %d/%d", d.Length, d.Width)
	}
	if i, ok := nl.NetByName("OUT"); !ok || i != d.Source {
		t.Fatalf("source net wrong")
	}
}
