// Benchmark for the band-sharded parallel sweep (extract.Options
// Workers). On a single-core machine the banded path can only show
// its stitch overhead — the speedup column is meaningful on multi-core
// hosts; cmd/ace -bench-json records NumCPU alongside the numbers so
// baselines stay honest.
package ace

import (
	"fmt"
	"testing"

	"ace/internal/extract"
	"ace/internal/gen"
)

// BenchmarkParallelExtract sweeps worker counts over the largest
// synthetic chip; workers=1 is the serial reference.
func BenchmarkParallelExtract(b *testing.B) {
	w := gen.MustBenchChip("riscb")
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var boxes, devs int
			for i := 0; i < b.N; i++ {
				res, err := extract.File(w.File, extract.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				boxes, devs = res.Counters.BoxesIn, len(res.Netlist.Devices)
			}
			b.ReportMetric(float64(boxes), "boxes")
			b.ReportMetric(float64(devs), "devices")
		})
	}
}

// BenchmarkParallelExtractChips covers the remaining chips at the
// fixed worker count the equivalence tests use, so regressions in the
// band partitioner or seam stitcher show up per design.
func BenchmarkParallelExtractChips(b *testing.B) {
	for _, w := range gen.BenchChips() {
		b.Run(w.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := extract.File(w.File, extract.Options{Workers: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
